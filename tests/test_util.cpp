/**
 * @file
 * Unit tests for the util substrate: deterministic RNG, saturating
 * counters, statistics accumulators, table formatting and the time
 * helpers.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "obs/counter.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace pcap {
namespace {

TEST(Types, SecondConversionsRoundTrip)
{
    EXPECT_EQ(secondsUs(1.0), 1'000'000);
    EXPECT_EQ(secondsUs(5.43), 5'430'000);
    EXPECT_EQ(millisUs(2.5), 2'500);
    EXPECT_DOUBLE_EQ(usToSeconds(secondsUs(12.75)), 12.75);
}

TEST(Types, NeverIsLaterThanAnyTime)
{
    EXPECT_GT(kTimeNever, secondsUs(1e12));
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(-3, 12);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 12);
    }
}

TEST(Rng, UniformIntCoversFullRange)
{
    Rng rng(8);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(9);
    EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval)
{
    Rng rng(10);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, Uniform01MeanNearHalf)
{
    Rng rng(11);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform01();
    EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-3.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(Rng, ChanceFrequencyTracksProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(14);
    double total = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        total += rng.exponential(4.0);
    EXPECT_NEAR(total / n, 4.0, 0.15);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(15);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(rng.exponential(0.001), 0.0);
}

TEST(Rng, LogNormalMedianMatches)
{
    Rng rng(16);
    std::vector<double> samples;
    for (int i = 0; i < 20001; ++i)
        samples.push_back(rng.logNormal(10.0, 1.0));
    std::sort(samples.begin(), samples.end());
    // Median of a log-normal equals the median parameter.
    EXPECT_NEAR(samples[samples.size() / 2], 10.0, 0.6);
}

TEST(Rng, WeightedChoiceRespectsWeights)
{
    Rng rng(17);
    int counts[3] = {0, 0, 0};
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedChoice({1.0, 2.0, 7.0})];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(Rng, WeightedChoiceZeroWeightNeverPicked)
{
    Rng rng(18);
    for (int i = 0; i < 1000; ++i)
        ASSERT_NE(rng.weightedChoice({1.0, 0.0, 1.0}), 1u);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(19);
    Rng childA = parent.fork(1);
    Rng childB = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += childA.next() == childB.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicGivenParentState)
{
    Rng p1(20), p2(20);
    Rng c1 = p1.fork(9);
    Rng c2 = p2.fork(9);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(c1.next(), c2.next());
}

TEST(HashString, StableAndDiscriminating)
{
    EXPECT_EQ(hashString("mozilla"), hashString("mozilla"));
    EXPECT_NE(hashString("mozilla"), hashString("writer"));
    EXPECT_NE(hashString(""), hashString(" "));
}

TEST(SaturatingCounter, SaturatesAtBothEnds)
{
    SaturatingCounter counter(3);
    EXPECT_EQ(counter.value(), 0);
    counter.decrement();
    EXPECT_EQ(counter.value(), 0);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3);
    EXPECT_TRUE(counter.isSaturated());
}

TEST(SaturatingCounter, ConfidenceIsUpperHalf)
{
    SaturatingCounter counter(3);
    EXPECT_FALSE(counter.isConfident()); // 0
    counter.increment();
    EXPECT_FALSE(counter.isConfident()); // 1
    counter.increment();
    EXPECT_TRUE(counter.isConfident()); // 2
    counter.increment();
    EXPECT_TRUE(counter.isConfident()); // 3
}

TEST(SaturatingCounter, InitialValueClamped)
{
    SaturatingCounter counter(3, 200);
    EXPECT_EQ(counter.value(), 3);
}

TEST(SaturatingCounter, ResetReturnsToZero)
{
    SaturatingCounter counter(7, 5);
    counter.reset();
    EXPECT_EQ(counter.value(), 0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.min(), 0.0);
    EXPECT_DOUBLE_EQ(stat.max(), 0.0);
}

TEST(RunningStat, TracksMeanMinMax)
{
    RunningStat stat;
    stat.add(2.0);
    stat.add(-4.0);
    stat.add(8.0);
    EXPECT_EQ(stat.count(), 3u);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
    EXPECT_DOUBLE_EQ(stat.min(), -4.0);
    EXPECT_DOUBLE_EQ(stat.max(), 8.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 6.0);
}

TEST(SampleSet, PercentilesExact)
{
    SampleSet set;
    for (int i = 1; i <= 100; ++i)
        set.add(i);
    EXPECT_DOUBLE_EQ(set.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(set.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(set.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(set.percentile(0.0), 1.0);
}

TEST(SampleSet, FractionInHalfOpenRange)
{
    SampleSet set;
    for (int i = 0; i < 10; ++i)
        set.add(i);
    EXPECT_DOUBLE_EQ(set.fractionIn(0.0, 5.0), 0.5);
    EXPECT_DOUBLE_EQ(set.fractionIn(5.0, 100.0), 0.5);
    EXPECT_DOUBLE_EQ(set.fractionIn(100.0, 200.0), 0.0);
}

TEST(TextTable, AlignsColumnsAndUnderlinesHeader)
{
    TextTable table;
    table.setHeader({"a", "bbbb"});
    table.addRow({"cccc", "d"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a     bbbb"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("cccc  d"), std::string::npos);
}

TEST(TextTable, HeaderInsertedBeforeExistingRows)
{
    TextTable table;
    table.addRow({"row"});
    table.setHeader({"head"});
    std::ostringstream os;
    table.print(os);
    EXPECT_LT(os.str().find("head"), os.str().find("row"));
}

TEST(Formatting, PercentAndFixedStrings)
{
    EXPECT_EQ(percentString(0.7634), "76.3%");
    EXPECT_EQ(percentString(0.7634, 2), "76.34%");
    EXPECT_EQ(fixedString(5.4321, 2), "5.43");
}

TEST(JsonParse, ReadsEveryValueKind)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(
        R"({"n": null, "t": true, "f": false, "pi": 3.25,
            "neg": -17, "exp": 2.5e3,
            "s": "a \"quoted\" A\n",
            "list": [1, [2], {"k": "v"}],
            "nested": {"inner": {}}})",
        doc, &error))
        << error;

    EXPECT_TRUE(doc.find("n")->isNull());
    EXPECT_TRUE(doc.find("t")->asBool());
    EXPECT_FALSE(doc.find("f")->asBool(true));
    EXPECT_DOUBLE_EQ(doc.find("pi")->asDouble(), 3.25);
    EXPECT_DOUBLE_EQ(doc.find("neg")->asDouble(), -17.0);
    EXPECT_DOUBLE_EQ(doc.find("exp")->asDouble(), 2500.0);
    EXPECT_EQ(doc.find("s")->asString(), "a \"quoted\" A\n");

    const Json *list = doc.find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 3u);
    EXPECT_DOUBLE_EQ(list->at(0).asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(list->at(1).at(0).asDouble(), 2.0);
    EXPECT_EQ(list->at(2).find("k")->asString(), "v");

    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_TRUE(doc.find("nested")->find("inner")->isObject());
}

TEST(JsonParse, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "{",
        "[1, 2",
        R"({"a": 1,})",
        R"({"a" 1})",
        R"({"a": 1} trailing)",
        "\"unterminated",
        "nul",
        "1..5",
        R"({"bad escape": "\q"})",
    };
    for (const char *text : bad) {
        Json doc;
        std::string error;
        EXPECT_FALSE(Json::parse(text, doc, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonParse, RoundTripsThroughDump)
{
    Json doc;
    ASSERT_TRUE(Json::parse(
        R"({"b": [1, 2.5, "x"], "a": {"y": true}})", doc));

    std::ostringstream first;
    doc.dump(first);

    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(first.str(), reparsed, &error)) << error;
    std::ostringstream second;
    reparsed.dump(second);

    // Key order is insertion order and survives the round trip, so
    // the dumps are byte-identical.
    EXPECT_EQ(first.str(), second.str());
}

} // namespace
} // namespace pcap
