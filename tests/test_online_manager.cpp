/**
 * @file
 * OnlineManager tests: the event-driven OS-integration facade —
 * spin-down scheduling, polling, wake-on-access, and table
 * persistence across manager instances.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/online_manager.hpp"

namespace pcap::core {
namespace {

constexpr Pid kProc = 7;
constexpr Address kPcA = 0x08048010;
constexpr Address kPcB = 0x08048020;

class OnlineManagerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (std::filesystem::temp_directory_path() /
                "pcap_online_manager_test")
                   .string();
        std::filesystem::remove_all(dir_);
        config_.tableDirectory = dir_;
        config_.application = "unit-test-app";
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    OnlineManagerConfig config_;
    std::string dir_;
};

TEST_F(OnlineManagerTest, UntrainedManagerUsesBackupTimer)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    // No trained signature: the backup timeout schedules +10 s.
    EXPECT_EQ(manager.pendingShutdownAt(), secondsUs(11));
    EXPECT_FALSE(manager.poll(secondsUs(5)));
    EXPECT_EQ(manager.diskState(), power::DiskState::Idle);
    EXPECT_TRUE(manager.poll(secondsUs(11)));
    EXPECT_EQ(manager.diskState(), power::DiskState::Standby);
    manager.finish(secondsUs(20));
}

TEST_F(OnlineManagerTest, AccessWakesTheDiskAndPaysSpinUp)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    ASSERT_TRUE(manager.poll(secondsUs(11)));

    const TimeUs completion =
        manager.onIo(kProc, secondsUs(30), kPcA, 3, 5);
    // 1.6 s spin-up plus one block of service.
    EXPECT_GE(completion, secondsUs(31.6));
    // Two spin-ups: the manager had already spun the idle disk down
    // at t=0 (every process consents before any I/O), so the very
    // first access paid a spin-up too.
    EXPECT_EQ(manager.spinUps(), 2u);
    manager.finish(secondsUs(40));
}

TEST_F(OnlineManagerTest, TrainingEnablesImmediateShutdown)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    // A 30 s idle period trains the signature...
    manager.onIo(kProc, secondsUs(31), kPcA, 3, 5);
    // ...so the repeat consents after the 1 s wait-window instead
    // of the 10 s backup timer — gated only by the end of the
    // access's own service (the disk was asleep, so it spins up
    // first).
    const auto &disk = config_.disk;
    EXPECT_EQ(manager.pendingShutdownAt(),
              secondsUs(31) + disk.spinUpTime +
                  disk.serviceTimePerBlock);
    EXPECT_EQ(manager.tableEntries(), 1u);
    manager.finish(secondsUs(40));
}

TEST_F(OnlineManagerTest, TablePersistsAcrossInstances)
{
    {
        OnlineManager manager(config_);
        manager.processStart(kProc, 0);
        manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
        manager.onIo(kProc, secondsUs(31), kPcA, 3, 5);
        manager.processExit(kProc, secondsUs(32));
        manager.finish(secondsUs(33)); // persists the table
    }

    OnlineManager reborn(config_);
    EXPECT_EQ(reborn.tableEntries(), 1u);
    reborn.processStart(kProc, 0);
    reborn.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    // First I/O of the new run already predicts: the spin-down waits
    // only for the wait-window / end of service, not the 10 s backup
    // timer (the access spun the sleeping disk up first).
    const auto &disk = config_.disk;
    EXPECT_EQ(reborn.pendingShutdownAt(),
              secondsUs(1) + disk.spinUpTime +
                  disk.serviceTimePerBlock);
    reborn.finish(secondsUs(10));
}

TEST_F(OnlineManagerTest, InMemoryModeNeverTouchesDisk)
{
    config_.tableDirectory.clear();
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    manager.onIo(kProc, secondsUs(31), kPcA, 3, 5);
    EXPECT_EQ(manager.persist(), "");
    manager.finish(secondsUs(40));
    EXPECT_FALSE(std::filesystem::exists(dir_));
}

TEST_F(OnlineManagerTest, MultipleProcessesMustAllConsent)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.processStart(kProc + 1, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    manager.onIo(kProc + 1, secondsUs(4), kPcB, 4, 6);
    // Both untrained: the later backup timer rules (4 + 10 s).
    EXPECT_EQ(manager.pendingShutdownAt(), secondsUs(14));

    manager.processExit(kProc + 1, secondsUs(5));
    // The exit releases the later constraint.
    EXPECT_EQ(manager.pendingShutdownAt(), secondsUs(11));
    manager.finish(secondsUs(20));
}

TEST_F(OnlineManagerTest, NoPendingShutdownWhileInStandby)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    ASSERT_TRUE(manager.poll(secondsUs(30)));
    EXPECT_EQ(manager.pendingShutdownAt(), kTimeNever);
    EXPECT_FALSE(manager.poll(secondsUs(40)));
    manager.finish(secondsUs(50));
}

TEST_F(OnlineManagerTest, EnergyAndCountersAccumulate)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.onIo(kProc, secondsUs(1), kPcA, 3, 5);
    manager.poll(secondsUs(11));
    manager.onIo(kProc, secondsUs(40), kPcA, 3, 5);
    manager.finish(secondsUs(50));

    // Three spin-downs: the idle system at t=0, the backup-timer one
    // at 11 s, and the one finish() lets happen at 50 s; two wakes.
    EXPECT_EQ(manager.shutdowns(), 3u);
    EXPECT_EQ(manager.spinUps(), 2u);
    EXPECT_GT(manager.energy().total(), 0.0);
    EXPECT_GT(
        manager.energy().get(power::EnergyCategory::PowerCycle),
        0.0);
}

TEST_F(OnlineManagerTest, UseAfterFinishPanics)
{
    OnlineManager manager(config_);
    manager.processStart(kProc, 0);
    manager.finish(secondsUs(1));
    EXPECT_DEATH(manager.onIo(kProc, secondsUs(2), kPcA, 3, 5),
                 "finish");
}

} // namespace
} // namespace pcap::core
