/**
 * @file
 * Observability tests: registry thread-safety, histogram bucket
 * semantics, scope isolation, exporter output, manifest writing and
 * MetricsObserver parity with the uninstrumented kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "power/energy.hpp"
#include "sim/drivers.hpp"
#include "sim/input.hpp"
#include "sim/kernel.hpp"
#include "sim/observer.hpp"
#include "util/thread_pool.hpp"

namespace pcap {
namespace {

using obs::Labels;
using obs::MetricsRegistry;
using obs::ScopedMetrics;

// ---------------------------------------------------------------
// Registry semantics and thread safety
// ---------------------------------------------------------------

TEST(MetricsRegistry, CreateOrGetReturnsSameObject)
{
    MetricsRegistry registry;
    obs::Counter &a = registry.counter("events", {{"app", "x"}});
    obs::Counter &b = registry.counter("events", {{"app", "x"}});
    EXPECT_EQ(&a, &b);

    // A different label set is a different series.
    obs::Counter &c = registry.counter("events", {{"app", "y"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(registry.seriesCount(), 2u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries)
{
    MetricsRegistry registry;
    obs::Counter &a =
        registry.counter("m", {{"a", "1"}, {"b", "2"}});
    obs::Counter &b =
        registry.counter("m", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry.seriesCount(), 1u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact)
{
    MetricsRegistry registry;
    obs::Counter &counter = registry.counter("hammer_total");
    obs::Gauge &gauge = registry.gauge("hammer_gauge");
    obs::Histogram &histogram =
        registry.histogram("hammer_hist", {10.0, 100.0});

    const std::size_t tasks = 64;
    const std::uint64_t perTask = 2000;
    ThreadPool pool(8);
    pool.parallelFor(tasks, [&](std::size_t) {
        for (std::uint64_t i = 0; i < perTask; ++i) {
            counter.inc();
            gauge.add(1.0);
            histogram.observe(5.0);
        }
    });

    EXPECT_EQ(counter.value(), tasks * perTask);
    EXPECT_DOUBLE_EQ(gauge.value(),
                     static_cast<double>(tasks * perTask));
    EXPECT_EQ(histogram.count(), tasks * perTask);
    EXPECT_EQ(histogram.bucketValue(0), tasks * perTask);
}

TEST(MetricsRegistry, ConcurrentCreateOrGetIsSafe)
{
    // Every thread resolves the same 16 series while others create
    // them; totals must still be exact.
    MetricsRegistry registry;
    const std::size_t tasks = 64;
    ThreadPool pool(8);
    pool.parallelFor(tasks, [&](std::size_t task) {
        for (int i = 0; i < 16; ++i) {
            registry
                .counter("series_total",
                         {{"i", std::to_string(i)}})
                .inc();
        }
        (void)task;
    });
    EXPECT_EQ(registry.seriesCount(), 16u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(registry
                      .counter("series_total",
                               {{"i", std::to_string(i)}})
                      .value(),
                  tasks);
    }
}

// ---------------------------------------------------------------
// Histogram bucket edges
// ---------------------------------------------------------------

TEST(Histogram, LeSemanticsOnBucketEdges)
{
    obs::Histogram histogram({1.0, 10.0, 100.0});
    ASSERT_EQ(histogram.bucketCount(), 4u); // 3 bounds + overflow

    histogram.observe(1.0);   // == upper -> first bucket (le)
    histogram.observe(1.5);   // second bucket
    histogram.observe(10.0);  // == upper -> second bucket
    histogram.observe(100.5); // overflow
    histogram.observe(0.0);   // first bucket

    EXPECT_EQ(histogram.bucketValue(0), 2u);
    EXPECT_EQ(histogram.bucketValue(1), 2u);
    EXPECT_EQ(histogram.bucketValue(2), 0u);
    EXPECT_EQ(histogram.bucketValue(3), 1u);
    EXPECT_EQ(histogram.count(), 5u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 113.0);
    EXPECT_DOUBLE_EQ(histogram.upper(0), 1.0);
    EXPECT_TRUE(std::isinf(histogram.upper(3)));
}

// ---------------------------------------------------------------
// Scoping
// ---------------------------------------------------------------

TEST(ScopedMetrics, ScopesWithDifferentLabelsAreIsolated)
{
    MetricsRegistry registry;
    ScopedMetrics cellA(&registry, {{"app", "a"}});
    ScopedMetrics cellB(&registry, {{"app", "b"}});

    cellA.counter("idle_total").inc(3);
    cellB.counter("idle_total").inc(5);

    EXPECT_EQ(cellA.counter("idle_total").value(), 3u);
    EXPECT_EQ(cellB.counter("idle_total").value(), 5u);
    EXPECT_EQ(registry.seriesCount(), 2u);
}

TEST(ScopedMetrics, WithExtendsTheLabelSet)
{
    MetricsRegistry registry;
    ScopedMetrics base(&registry, {{"config", "c1"}});
    ScopedMetrics child = base.with({{"policy", "pcap"}});

    child.counter("runs_total").inc();
    EXPECT_EQ(registry
                  .counter("runs_total",
                           {{"config", "c1"}, {"policy", "pcap"}})
                  .value(),
              1u);
}

TEST(ScopedMetrics, DisabledScopeRoutesToScratch)
{
    ScopedMetrics disabled;
    EXPECT_FALSE(disabled.enabled());
    // No crash, no registry needed; values still accumulate into
    // the never-exported scratch registry.
    disabled.counter("scratch_total").inc();
    disabled.gauge("scratch_gauge").set(2.0);

    MetricsRegistry registry;
    ScopedMetrics enabled(&registry);
    EXPECT_TRUE(enabled.enabled());
    EXPECT_EQ(registry.seriesCount(), 0u);
}

// ---------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------

/** A small registry covering all four kinds. */
void
fillExportRegistry(MetricsRegistry &registry)
{
    registry.describe("test_events_total", "Events seen.");
    registry.counter("test_events_total", {{"app", "a"}}).inc(3);
    registry.gauge("test_level").set(1.5);
    obs::Histogram &histogram =
        registry.histogram("test_len", {1.0, 2.0});
    histogram.observe(1.0);
    histogram.observe(2.5);
    registry.timer("test_phase_seconds").addSeconds(2.0);
}

TEST(Exporters, PrometheusGolden)
{
    MetricsRegistry registry;
    fillExportRegistry(registry);

    std::ostringstream os;
    obs::writePrometheus(registry, os);

    const std::string expected =
        "# HELP test_events_total Events seen.\n"
        "# TYPE test_events_total counter\n"
        "test_events_total{app=\"a\"} 3\n"
        "# TYPE test_len histogram\n"
        "test_len_bucket{le=\"1\"} 1\n"
        "test_len_bucket{le=\"2\"} 1\n"
        "test_len_bucket{le=\"+Inf\"} 2\n"
        "test_len_sum 3.5\n"
        "test_len_count 2\n"
        "# TYPE test_level gauge\n"
        "test_level 1.5\n"
        "# TYPE test_phase_seconds_total counter\n"
        "test_phase_seconds_total 2\n"
        "test_phase_seconds_laps_total 1\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Exporters, JsonCarriesSchemaAndAllSeries)
{
    MetricsRegistry registry;
    fillExportRegistry(registry);

    std::ostringstream os;
    obs::metricsToJson(registry).dump(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"schema\": \"pcap-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"test_events_total\""), std::string::npos);
    EXPECT_NE(json.find("\"app\": \"a\""), std::string::npos);
    EXPECT_NE(json.find("\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"timer\""), std::string::npos);
    EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
    EXPECT_NE(json.find("\"laps\": 1"), std::string::npos);
}

TEST(Exporters, SnapshotOrderIsIndependentOfRegistration)
{
    // Register in one order, then in the reverse order; both
    // registries must export byte-identical documents.
    auto fill = [](MetricsRegistry &registry, bool reversed) {
        std::vector<std::string> apps = {"a", "b", "c"};
        if (reversed)
            std::reverse(apps.begin(), apps.end());
        for (const std::string &app : apps)
            registry.counter("events_total", {{"app", app}}).inc();
    };
    MetricsRegistry forward, backward;
    fill(forward, false);
    fill(backward, true);

    std::ostringstream a, b;
    obs::writePrometheus(forward, a);
    obs::writePrometheus(backward, b);
    EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------

TEST(Manifest, WriteProducesReadableDocument)
{
    obs::RunManifest manifest;
    manifest.createdAtUtc = "2026-01-01T00:00:00Z";
    manifest.gitDescribe = "v0-test";
    manifest.command = "bench_all --json out.json";
    manifest.seed = 42;
    manifest.jobs = 4;
    manifest.maxExecutions = 5;
    manifest.workloadCacheEnabled = true;
    manifest.workloadCacheDir = "/tmp/cache";
    manifest.inputKeys.emplace_back("mozilla", "deadbeef.trace");
    manifest.phaseMs.emplace_back("inputs", 12.5);
    manifest.reports.push_back("table1");
    manifest.resultsPath = "out.json";

    const std::string path =
        ::testing::TempDir() + "manifest_test.json";
    ASSERT_EQ(obs::writeManifest(manifest, path), "");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"pcap-run-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"2026-01-01T00:00:00Z\""),
              std::string::npos);
    EXPECT_NE(json.find("\"v0-test\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"mozilla\""), std::string::npos);
    EXPECT_NE(json.find("\"deadbeef.trace\""), std::string::npos);
    EXPECT_NE(json.find("\"table1\""), std::string::npos);
}

TEST(Manifest, WriteToUnwritablePathReportsError)
{
    obs::RunManifest manifest;
    EXPECT_NE(obs::writeManifest(manifest,
                                 "/nonexistent-dir/manifest.json"),
              "");
}

TEST(Manifest, TimestampLooksIso8601)
{
    const std::string ts = obs::isoTimestampUtc();
    ASSERT_EQ(ts.size(), 20u) << ts;
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts[19], 'Z');
}

// ---------------------------------------------------------------
// MetricsObserver parity with the uninstrumented kernel
// ---------------------------------------------------------------

constexpr Pid kPidA = 100;

sim::ExecutionInput
scriptedInput(std::vector<trace::DiskAccess> accesses, TimeUs end)
{
    sim::ExecutionInput input;
    input.app = "scripted";
    input.accesses = std::move(accesses);
    input.processes.push_back({kPidA, 0, end});
    input.processes.push_back({kFlushDaemonPid, 0, end});
    input.endTime = end;
    return input;
}

trace::DiskAccess
access(TimeUs time)
{
    trace::DiskAccess a;
    a.time = time;
    a.pid = kPidA;
    a.pc = 0x1000;
    a.fd = 3;
    a.blocks = 1;
    return a;
}

std::uint64_t
outcomeCount(const ScopedMetrics &scope, const char *outcome)
{
    return scope
        .counter("pcap_sim_idle_periods_total",
                 {{"outcome", outcome}})
        .value();
}

TEST(MetricsObserver, ObservationDoesNotChangeResults)
{
    auto makeInput = [] {
        return scriptedInput({access(0), access(secondsUs(30)),
                              access(secondsUs(60))},
                             secondsUs(90));
    };
    sim::SimParams params;

    sim::PolicySession plainSession(
        sim::PolicyConfig::timeoutPolicy());
    sim::GlobalDriver plainDriver(plainSession);
    sim::SimulationKernel plain(params);
    const sim::RunResult expected =
        plain.run({makeInput()}, plainDriver);

    MetricsRegistry registry;
    ScopedMetrics scope(&registry, {{"app", "scripted"}});
    sim::MetricsObserver observer(scope, params.breakeven());
    sim::PolicySession session(sim::PolicyConfig::timeoutPolicy());
    sim::GlobalDriver driver(session);
    sim::SimulationKernel kernel(params, observer);
    const sim::RunResult observed =
        kernel.run({makeInput()}, driver);

    EXPECT_EQ(observed.accuracy.opportunities,
              expected.accuracy.opportunities);
    EXPECT_EQ(observed.accuracy.hits(), expected.accuracy.hits());
    EXPECT_EQ(observed.accuracy.misses(),
              expected.accuracy.misses());
    EXPECT_EQ(observed.shutdowns, expected.shutdowns);
    EXPECT_EQ(observed.spinUps, expected.spinUps);
    EXPECT_EQ(observed.ignoredShutdowns, expected.ignoredShutdowns);
    EXPECT_EQ(observed.totalSpinUpDelay, expected.totalSpinUpDelay);
    EXPECT_DOUBLE_EQ(observed.energy.total(),
                     expected.energy.total());
}

TEST(MetricsObserver, CountersMatchKernelResults)
{
    sim::SimParams params;
    MetricsRegistry registry;
    ScopedMetrics scope(&registry, {{"app", "scripted"}});
    sim::MetricsObserver observer(scope, params.breakeven());

    sim::PolicySession session(sim::PolicyConfig::timeoutPolicy());
    sim::GlobalDriver driver(session);
    sim::SimulationKernel kernel(params, observer);
    const sim::ExecutionInput input = scriptedInput(
        {access(0), access(secondsUs(30)), access(secondsUs(60))},
        secondsUs(90));
    const sim::RunResult result = kernel.run({input}, driver);

    EXPECT_EQ(scope.counter("pcap_sim_executions_total").value(),
              1u);
    EXPECT_EQ(scope.counter("pcap_disk_spin_ups_total").value(),
              result.spinUps);
    EXPECT_EQ(scope
                  .counter("pcap_sim_shutdown_orders_total",
                           {{"status", "issued"}})
                  .value(),
              result.shutdowns);
    EXPECT_EQ(scope
                  .counter("pcap_sim_shutdown_orders_total",
                           {{"status", "ignored"}})
                  .value(),
              result.ignoredShutdowns);
    EXPECT_EQ(outcomeCount(scope, "hit_primary"),
              result.accuracy.hitPrimary);
    EXPECT_EQ(outcomeCount(scope, "hit_backup"),
              result.accuracy.hitBackup);
    EXPECT_EQ(outcomeCount(scope, "miss_primary"),
              result.accuracy.missPrimary);
    EXPECT_EQ(outcomeCount(scope, "miss_backup"),
              result.accuracy.missBackup);
    EXPECT_EQ(outcomeCount(scope, "not_predicted"),
              result.accuracy.notPredicted);

    // Energy mirrored into gauges, one per category.
    double joules = 0.0;
    for (const char *category :
         {"busy_io", "idle_short", "idle_long", "power_cycle"}) {
        joules += scope
                      .gauge("pcap_energy_joules",
                             {{"category", category}})
                      .value();
    }
    EXPECT_DOUBLE_EQ(joules, result.energy.total());

    // Disk-state residency must partition simulated time exactly.
    std::uint64_t residency = 0;
    for (const char *state :
         {"active", "idle", "low-power", "standby"}) {
        residency += scope
                         .counter("pcap_disk_state_us_total",
                                  {{"state", state}})
                         .value();
    }
    EXPECT_EQ(residency,
              static_cast<std::uint64_t>(input.endTime));
}

} // namespace
} // namespace pcap
