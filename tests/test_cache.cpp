/**
 * @file
 * File-cache tests: LRU behaviour, write-allocate semantics,
 * age-based coalesced flushes, eviction write-backs and the
 * trace-filter pipeline.
 */

#include <gtest/gtest.h>

#include "cache/file_cache.hpp"
#include "trace/builder.hpp"

namespace pcap::cache {
namespace {

trace::TraceEvent
readEvent(TimeUs time, FileId file, std::uint64_t offset,
          std::uint32_t size, Pid pid = 10, Address pc = 0x1000)
{
    trace::TraceEvent event;
    event.time = time;
    event.pid = pid;
    event.type = trace::EventType::Read;
    event.pc = pc;
    event.fd = 3;
    event.file = file;
    event.offset = offset;
    event.size = size;
    return event;
}

trace::TraceEvent
writeEvent(TimeUs time, FileId file, std::uint64_t offset,
           std::uint32_t size)
{
    trace::TraceEvent event = readEvent(time, file, offset, size);
    event.type = trace::EventType::Write;
    return event;
}

CacheParams
smallCache(std::size_t blocks = 4)
{
    CacheParams params;
    params.blockSize = 4096;
    params.capacityBytes = blocks * 4096;
    return params;
}

TEST(CacheParams, DefaultsMatchPaper)
{
    const CacheParams params;
    EXPECT_EQ(params.capacityBytes, 256u * 1024u);
    EXPECT_EQ(params.blockSize, 4096u);
    EXPECT_EQ(params.flushInterval, secondsUs(30));
    EXPECT_EQ(params.capacityBlocks(), 64u);
    EXPECT_EQ(params.validate(), "");
}

TEST(CacheParams, ValidateCatchesBadConfigs)
{
    CacheParams params;
    params.blockSize = 0;
    EXPECT_NE(params.validate(), "");

    params = CacheParams{};
    params.capacityBytes = 100;
    EXPECT_NE(params.validate(), "");

    params = CacheParams{};
    params.flushCheckPeriod = params.flushInterval + 1;
    EXPECT_NE(params.validate(), "");
}

TEST(FileCache, FirstReadMissesSecondHits)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;

    cache.access(readEvent(100, 5, 0, 4096), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blocks, 1u);
    EXPECT_FALSE(out[0].isWrite);
    EXPECT_EQ(out[0].pid, 10);
    EXPECT_EQ(out[0].pc, 0x1000u);

    out.clear();
    cache.access(readEvent(200, 5, 0, 4096), out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FileCache, MultiBlockReadCountsEveryBlock)
{
    FileCache cache(smallCache(8));
    std::vector<trace::DiskAccess> out;
    cache.access(readEvent(100, 5, 0, 3 * 4096), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blocks, 3u);
    EXPECT_EQ(cache.residentBlocks(), 3u);
}

TEST(FileCache, UnalignedAccessSpansBlocks)
{
    FileCache cache(smallCache(8));
    std::vector<trace::DiskAccess> out;
    // 2 bytes straddling a block boundary touch two blocks.
    cache.access(readEvent(100, 5, 4095, 2), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blocks, 2u);
}

TEST(FileCache, LruEvictsLeastRecentlyUsed)
{
    FileCache cache(smallCache(2));
    std::vector<trace::DiskAccess> out;
    cache.access(readEvent(100, 1, 0, 4096), out);
    cache.access(readEvent(200, 2, 0, 4096), out);
    // Touch file 1 so file 2 becomes LRU.
    cache.access(readEvent(300, 1, 0, 4096), out);
    cache.access(readEvent(400, 3, 0, 4096), out); // evicts file 2

    out.clear();
    cache.access(readEvent(500, 1, 0, 4096), out);
    EXPECT_TRUE(out.empty()); // still resident
    cache.access(readEvent(600, 2, 0, 4096), out);
    EXPECT_EQ(out.size(), 1u); // was evicted
}

TEST(FileCache, NeverExceedsCapacity)
{
    FileCache cache(smallCache(4));
    std::vector<trace::DiskAccess> out;
    for (int i = 0; i < 100; ++i)
        cache.access(readEvent(100 * (i + 1), i, 0, 4096), out);
    EXPECT_EQ(cache.residentBlocks(), 4u);
    EXPECT_EQ(cache.stats().evictions, 96u);
}

TEST(FileCache, WriteMissFetchesFromDisk)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    cache.access(writeEvent(100, 5, 0, 4096), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].isWrite);
    EXPECT_EQ(cache.dirtyBlocks(), 1u);
}

TEST(FileCache, WriteHitIsAbsorbed)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    cache.access(readEvent(100, 5, 0, 4096), out);
    out.clear();
    cache.access(writeEvent(200, 5, 0, 4096), out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(cache.dirtyBlocks(), 1u);
}

TEST(FileCache, DirtyBlockFlushesAfterInterval)
{
    CacheParams params = smallCache();
    FileCache cache(params);
    std::vector<trace::DiskAccess> out;
    cache.access(writeEvent(secondsUs(1), 5, 0, 4096), out);
    out.clear();

    // Just before expiry: nothing flushed.
    cache.advanceTo(secondsUs(1) + params.flushInterval -
                        secondsUs(1),
                    out);
    EXPECT_TRUE(out.empty());

    // After expiry (next 5 s check): the write-back appears,
    // attributed to the flush daemon.
    cache.advanceTo(secondsUs(40), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].pid, kFlushDaemonPid);
    EXPECT_EQ(out[0].pc, kFlushDaemonPc);
    EXPECT_TRUE(out[0].isWrite);
    EXPECT_EQ(cache.dirtyBlocks(), 0u);
}

TEST(FileCache, RedirtyRefreshesWriteBackTimer)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    cache.access(writeEvent(secondsUs(1), 5, 0, 4096), out);
    // Re-dirty at 20 s: the write-back clock restarts.
    cache.access(writeEvent(secondsUs(20), 5, 0, 4096), out);
    out.clear();
    cache.advanceTo(secondsUs(40), out);
    EXPECT_TRUE(out.empty()); // 40 - 20 < 30
    cache.advanceTo(secondsUs(55), out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(FileCache, FlushCoalescesWholeDirtySet)
{
    FileCache cache(smallCache(8));
    std::vector<trace::DiskAccess> out;
    cache.access(writeEvent(secondsUs(1), 5, 0, 4096), out);
    cache.access(writeEvent(secondsUs(28), 6, 0, 4096), out);
    out.clear();
    // At ~31 s the first block expires; the second (only 3 s dirty)
    // must be written back in the same batch.
    cache.advanceTo(secondsUs(36), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blocks, 2u);
    EXPECT_EQ(cache.dirtyBlocks(), 0u);
}

TEST(FileCache, EvictionWritesBackDirtyVictim)
{
    FileCache cache(smallCache(1));
    std::vector<trace::DiskAccess> out;
    cache.access(writeEvent(100, 5, 0, 4096), out);
    out.clear();
    cache.access(readEvent(200, 6, 0, 4096), out);
    // Two accesses: the eviction write-back of file 5 and the read
    // miss of file 6.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].isWrite);
    EXPECT_EQ(out[0].pid, kFlushDaemonPid);
    EXPECT_EQ(out[0].file, 5u);
    EXPECT_FALSE(out[1].isWrite);
}

TEST(FileCache, OpenProbesMetadataOnce)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    trace::TraceEvent open = readEvent(100, 5, 0, 0);
    open.type = trace::EventType::Open;
    cache.access(open, out);
    EXPECT_EQ(out.size(), 1u);
    out.clear();
    open.time = 200;
    cache.access(open, out);
    EXPECT_TRUE(out.empty()); // metadata now cached
}

TEST(FileCache, MetadataAndDataBlocksAreDistinct)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    cache.access(readEvent(100, 5, 0, 4096), out);
    out.clear();
    trace::TraceEvent open = readEvent(200, 5, 0, 0);
    open.type = trace::EventType::Open;
    cache.access(open, out);
    EXPECT_EQ(out.size(), 1u); // inode probe still misses
}

TEST(FileCache, LifecycleEventsAreIgnored)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    trace::TraceEvent fork = readEvent(100, 5, 0, 0);
    fork.type = trace::EventType::Fork;
    cache.access(fork, out);
    trace::TraceEvent close = readEvent(200, 5, 0, 0);
    close.type = trace::EventType::Close;
    cache.access(close, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(cache.stats().lookups, 0u);
}

TEST(FileCache, FlushAllDrainsEverything)
{
    FileCache cache(smallCache(8));
    std::vector<trace::DiskAccess> out;
    cache.access(writeEvent(100, 5, 0, 2 * 4096), out);
    out.clear();
    cache.flushAll(secondsUs(2), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blocks, 2u);
    EXPECT_EQ(cache.dirtyBlocks(), 0u);
}

TEST(FileCache, ClearColdStartsTheCache)
{
    FileCache cache(smallCache());
    std::vector<trace::DiskAccess> out;
    cache.access(readEvent(100, 5, 0, 4096), out);
    cache.clear();
    EXPECT_EQ(cache.residentBlocks(), 0u);
    out.clear();
    cache.access(readEvent(200, 5, 0, 4096), out);
    EXPECT_EQ(out.size(), 1u); // misses again
}

TEST(FilterTrace, ProducesSortedAccessesAndStats)
{
    trace::TraceBuilder builder("app", 0, 10);
    builder.io(secondsUs(1), 10, trace::EventType::Read, 0x1000, 3,
               5, 0, 8192);
    builder.io(secondsUs(2), 10, trace::EventType::Write, 0x2000, 3,
               5, 0, 4096);
    builder.io(secondsUs(3), 10, trace::EventType::Read, 0x3000, 3,
               6, 0, 4096);
    const trace::Trace trace = builder.finish(secondsUs(60));

    CacheStats stats;
    const auto accesses = filterTrace(trace, smallCache(8), &stats);

    for (std::size_t i = 1; i < accesses.size(); ++i)
        EXPECT_LE(accesses[i - 1].time, accesses[i].time);
    EXPECT_GT(stats.lookups, 0u);
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    // The write at 2 s hits blocks read at 1 s (absorbed), then the
    // final flush at 60 s writes it back.
    EXPECT_GE(stats.writebackBlocks, 1u);
    EXPECT_TRUE(accesses.back().isWrite);
    EXPECT_EQ(accesses.back().pid, kFlushDaemonPid);
}

TEST(FilterTrace, HitRatioReflectsRereads)
{
    trace::TraceBuilder builder("app", 0, 10);
    for (int i = 0; i < 10; ++i) {
        builder.io(secondsUs(i + 1), 10, trace::EventType::Read,
                   0x1000, 3, 5, 0, 4096);
    }
    const trace::Trace trace = builder.finish(secondsUs(20));
    CacheStats stats;
    filterTrace(trace, smallCache(8), &stats);
    EXPECT_DOUBLE_EQ(stats.hitRatio(), 0.9);
}

} // namespace
} // namespace pcap::cache
