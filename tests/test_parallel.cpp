/**
 * @file
 * The parallel experiment engine must be indistinguishable from the
 * serial one: identical inputs, identical RunResults and
 * AccuracyStats for every application under a 4-worker pool, and
 * the on-disk workload cache must round-trip byte-identically.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <unistd.h>

#include "sim/experiment.hpp"
#include "sim/input_cache.hpp"

namespace pcap::sim {
namespace {

ExperimentConfig
fastConfig(int executions = 3)
{
    ExperimentConfig config;
    config.seed = 42;
    config.maxExecutions = executions;
    return config;
}

void
expectSameAccuracy(const AccuracyStats &a, const AccuracyStats &b)
{
    EXPECT_EQ(a.opportunities, b.opportunities);
    EXPECT_EQ(a.hitPrimary, b.hitPrimary);
    EXPECT_EQ(a.hitBackup, b.hitBackup);
    EXPECT_EQ(a.missPrimary, b.missPrimary);
    EXPECT_EQ(a.missBackup, b.missBackup);
    EXPECT_EQ(a.notPredicted, b.notPredicted);
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    expectSameAccuracy(a.accuracy, b.accuracy);
    EXPECT_EQ(a.shutdowns, b.shutdowns);
    EXPECT_EQ(a.spinUps, b.spinUps);
    EXPECT_EQ(a.ignoredShutdowns, b.ignoredShutdowns);
    EXPECT_EQ(a.totalSpinUpDelay, b.totalSpinUpDelay);
    // Energy is a deterministic function of the same event
    // sequence, so even the floating-point results are identical.
    EXPECT_EQ(a.energy.total(), b.energy.total());
    for (auto category :
         {power::EnergyCategory::BusyIo,
          power::EnergyCategory::IdleShort,
          power::EnergyCategory::IdleLong,
          power::EnergyCategory::PowerCycle}) {
        EXPECT_EQ(a.energy.get(category), b.energy.get(category));
    }
}

/** A scratch cache directory, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        path = (std::filesystem::temp_directory_path() /
                ("pcap-test-cache-" +
                 std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string path;
};

TEST(ParallelEvaluation, MatchesSerialForAllAppsAndModes)
{
    Evaluation serial(fastConfig());
    ParallelOptions options;
    options.jobs = 4;
    ParallelEvaluation parallel(fastConfig(), options);

    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::learningTree(),
        PolicyConfig::pcapBase(),
        PolicyConfig::pcapFdHistory(),
    };

    for (const std::string &app : serial.appNames()) {
        // Inputs are the same deterministic function of the seed.
        const auto &si = serial.inputs(app);
        const auto &pi = parallel.inputs(app);
        ASSERT_EQ(si.size(), pi.size());
        for (std::size_t i = 0; i < si.size(); ++i)
            EXPECT_TRUE(si[i].sameContentAs(pi[i]));

        const auto srow = serial.table1(app);
        const auto prow = parallel.table1(app);
        EXPECT_EQ(srow.executions, prow.executions);
        EXPECT_EQ(srow.globalIdlePeriods, prow.globalIdlePeriods);
        EXPECT_EQ(srow.localIdlePeriods, prow.localIdlePeriods);
        EXPECT_EQ(srow.totalIos, prow.totalIos);

        for (const PolicyConfig &policy : policies) {
            expectSameAccuracy(serial.localAccuracy(app, policy),
                               parallel.localAccuracy(app, policy));
            const auto sg = serial.globalRun(app, policy);
            const auto pg = parallel.globalRun(app, policy);
            expectSameRun(sg.run, pg.run);
            EXPECT_EQ(sg.tableEntries, pg.tableEntries);
        }
        expectSameRun(serial.multiStateRun(app, policies[2]).run,
                      parallel.multiStateRun(app, policies[2]).run);
        expectSameRun(serial.baseRun(app), parallel.baseRun(app));
        expectSameRun(serial.idealRun(app), parallel.idealRun(app));
    }
}

TEST(ParallelEvaluation, PrefetchComputesTheSameCells)
{
    Evaluation serial(fastConfig());
    ParallelOptions options;
    options.jobs = 4;
    ParallelEvaluation parallel(fastConfig(), options);

    std::vector<Cell> cells;
    for (const std::string &app : serial.appNames()) {
        cells.push_back(
            {CellMode::Global, app, PolicyConfig::pcapBase()});
        cells.push_back(
            {CellMode::Local, app, PolicyConfig::learningTree()});
        cells.push_back({CellMode::Base, app, {}});
    }
    // Duplicates must be harmless.
    const std::vector<Cell> firstBatch = cells;
    cells.insert(cells.end(), firstBatch.begin(), firstBatch.end());
    parallel.prefetch(cells);

    for (const std::string &app : serial.appNames()) {
        expectSameRun(
            serial.globalRun(app, PolicyConfig::pcapBase()).run,
            parallel.globalRun(app, PolicyConfig::pcapBase()).run);
        expectSameAccuracy(
            serial.localAccuracy(app, PolicyConfig::learningTree()),
            parallel.localAccuracy(app,
                                   PolicyConfig::learningTree()));
        expectSameRun(serial.baseRun(app), parallel.baseRun(app));
    }
}

TEST(InputCache, StreamRoundTripsByteIdentically)
{
    Evaluation eval(fastConfig());
    const auto &inputs = eval.inputs("nedit");
    const WorkloadKey key = fastConfig().workloadKey("nedit");

    std::ostringstream first;
    writeExecutionInputs(inputs, key, first);

    std::istringstream is(first.str());
    std::vector<ExecutionInput> loaded;
    ASSERT_EQ(readExecutionInputs(is, key, loaded), "");
    ASSERT_EQ(loaded.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_TRUE(inputs[i].sameContentAs(loaded[i]));
        // Derived indexes must be rebuilt, not left empty.
        EXPECT_EQ(inputs[i].simEvents().size(),
                  loaded[i].simEvents().size());
    }

    // Serializing the loaded inputs reproduces the exact bytes.
    std::ostringstream second;
    writeExecutionInputs(loaded, key, second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(InputCache, RejectsKeyMismatchAndCorruption)
{
    Evaluation eval(fastConfig());
    const auto &inputs = eval.inputs("nedit");
    const WorkloadKey key = fastConfig().workloadKey("nedit");

    std::ostringstream os;
    writeExecutionInputs(inputs, key, os);

    WorkloadKey other = key;
    other.seed = 43;
    {
        std::istringstream is(os.str());
        std::vector<ExecutionInput> loaded;
        EXPECT_NE(readExecutionInputs(is, other, loaded), "");
    }
    {
        std::istringstream is(os.str().substr(0, 40));
        std::vector<ExecutionInput> loaded;
        EXPECT_NE(readExecutionInputs(is, key, loaded), "");
    }
}

TEST(WorkloadCache, DiskRoundTripMatchesGeneration)
{
    TempDir dir;
    ParallelOptions options;
    options.jobs = 2;
    options.cacheDir = dir.path;

    // First engine: generates and stores.
    ParallelEvaluation first(fastConfig(), options);
    const auto &generated = first.inputs("xemacs");
    EXPECT_EQ(first.workloadCache().stores(), 1u);
    EXPECT_EQ(first.generatedApps(), 1u);

    // Second engine: must load the stored workload, identically.
    ParallelEvaluation second(fastConfig(), options);
    const auto &loaded = second.inputs("xemacs");
    EXPECT_EQ(second.workloadCache().hits(), 1u);
    EXPECT_EQ(second.generatedApps(), 0u);
    ASSERT_EQ(generated.size(), loaded.size());
    for (std::size_t i = 0; i < generated.size(); ++i)
        EXPECT_TRUE(generated[i].sameContentAs(loaded[i]));

    // And the simulation on loaded inputs matches the serial path.
    Evaluation serial(fastConfig());
    const auto sg =
        serial.globalRun("xemacs", PolicyConfig::pcapBase());
    const auto pg =
        second.globalRun("xemacs", PolicyConfig::pcapBase());
    EXPECT_EQ(sg.run.accuracy.opportunities,
              pg.run.accuracy.opportunities);
    EXPECT_EQ(sg.run.energy.total(), pg.run.energy.total());
}

TEST(WorkloadKey, CanonicalCoversEveryRecipeField)
{
    const WorkloadKey base = fastConfig().workloadKey("nedit");
    WorkloadKey changed = base;
    changed.seed ^= 1;
    EXPECT_NE(base.canonical(), changed.canonical());
    changed = base;
    changed.app = "xemacs";
    EXPECT_NE(base.canonical(), changed.canonical());
    changed = base;
    changed.maxExecutions += 1;
    EXPECT_NE(base.canonical(), changed.canonical());
    changed = base;
    changed.cache.capacityBytes *= 2;
    EXPECT_NE(base.canonical(), changed.canonical());
}

} // namespace
} // namespace pcap::sim
