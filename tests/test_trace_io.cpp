/**
 * @file
 * Serialization tests: text and binary trace formats, error
 * handling, and the extension-dispatching file helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "trace/builder.hpp"
#include "trace/io.hpp"

namespace pcap::trace {
namespace {

Trace
sampleTrace()
{
    TraceBuilder builder("sample-app", 7, 100);
    builder.io(10, 100, EventType::Open, 0x8048010, 3, 42, 0, 0);
    builder.io(25, 100, EventType::Read, 0x8048020, 3, 42, 4096,
               8192);
    builder.fork(30, 100, 101);
    builder.io(40, 101, EventType::Write, 0x8048030, 4, 43, 0, 4096);
    builder.io(55, 100, EventType::Close, 0x8048040, 3, 42, 0, 0);
    builder.exit(60, 101);
    return builder.finish(70);
}

TEST(TraceTextIo, RoundTripPreservesEverything)
{
    const Trace original = sampleTrace();
    std::stringstream buffer;
    writeText(original, buffer);

    Trace loaded;
    ASSERT_EQ(readText(buffer, loaded), "");
    EXPECT_EQ(loaded.app(), original.app());
    EXPECT_EQ(loaded.execution(), original.execution());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded.events()[i], original.events()[i]);
}

TEST(TraceTextIo, RejectsEmptyInput)
{
    std::stringstream buffer;
    Trace loaded;
    EXPECT_EQ(readText(buffer, loaded), "empty input");
}

TEST(TraceTextIo, RejectsBadHeader)
{
    std::stringstream buffer("not a trace\n");
    Trace loaded;
    EXPECT_NE(readText(buffer, loaded).find("bad header"),
              std::string::npos);
}

TEST(TraceTextIo, RejectsMalformedEventLine)
{
    std::stringstream buffer(
        "# pcap-trace v1 app=x execution=0\n10\t1\tread\n");
    Trace loaded;
    EXPECT_NE(readText(buffer, loaded).find("malformed"),
              std::string::npos);
}

TEST(TraceTextIo, RejectsUnknownEventType)
{
    std::stringstream buffer(
        "# pcap-trace v1 app=x execution=0\n"
        "10\t1\tmmap\t0\t3\t5\t0\t0\n");
    Trace loaded;
    EXPECT_NE(readText(buffer, loaded).find("unknown event type"),
              std::string::npos);
}

TEST(TraceTextIo, SkipsCommentsAndBlankLines)
{
    std::stringstream buffer(
        "# pcap-trace v1 app=x execution=2\n"
        "# a comment\n"
        "\n"
        "10\t1\tread\t4096\t3\t5\t0\t512\n");
    Trace loaded;
    ASSERT_EQ(readText(buffer, loaded), "");
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.execution(), 2);
}

TEST(TraceBinaryIo, RoundTripPreservesEverything)
{
    const Trace original = sampleTrace();
    std::stringstream buffer;
    writeBinary(original, buffer);

    Trace loaded;
    ASSERT_EQ(readBinary(buffer, loaded), "");
    EXPECT_EQ(loaded.app(), original.app());
    EXPECT_EQ(loaded.execution(), original.execution());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded.events()[i], original.events()[i]);
}

TEST(TraceBinaryIo, RejectsBadMagic)
{
    std::stringstream buffer("XXXXgarbage");
    Trace loaded;
    EXPECT_EQ(readBinary(buffer, loaded), "bad magic");
}

TEST(TraceBinaryIo, RejectsTruncatedStream)
{
    const Trace original = sampleTrace();
    std::stringstream buffer;
    writeBinary(original, buffer);
    const std::string whole = buffer.str();
    std::stringstream truncated(
        whole.substr(0, whole.size() - 10));
    Trace loaded;
    EXPECT_NE(readBinary(truncated, loaded).find("truncated"),
              std::string::npos);
}

TEST(TraceBinaryIo, HandlesEmptyTrace)
{
    const Trace original("empty", 0);
    std::stringstream buffer;
    writeBinary(original, buffer);
    Trace loaded;
    ASSERT_EQ(readBinary(buffer, loaded), "");
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.app(), "empty");
}

class TraceFileIo : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "pcap_trace_io_test";
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(TraceFileIo, TextExtensionRoundTrip)
{
    const Trace original = sampleTrace();
    const std::string path = (dir_ / "t.trace").string();
    ASSERT_EQ(saveTraceFile(original, path), "");
    Trace loaded;
    ASSERT_EQ(loadTraceFile(path, loaded), "");
    EXPECT_EQ(loaded.size(), original.size());
}

TEST_F(TraceFileIo, BinaryExtensionRoundTrip)
{
    const Trace original = sampleTrace();
    const std::string path = (dir_ / "t.tracebin").string();
    ASSERT_EQ(saveTraceFile(original, path), "");
    Trace loaded;
    ASSERT_EQ(loadTraceFile(path, loaded), "");
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.events().back(), original.events().back());
}

TEST_F(TraceFileIo, MissingFileReportsError)
{
    Trace loaded;
    EXPECT_NE(loadTraceFile((dir_ / "nope.trace").string(), loaded),
              "");
}

} // namespace
} // namespace pcap::trace
