/**
 * @file
 * The replay kernel, its policy drivers and the observer layer.
 *
 *  - Reference parity: every report of the byte-compared suite,
 *    rendered through the kernel/driver path, must match
 *    bench/reference/BENCH_RESULTS.ref.json line for line.
 *  - Observer ordering: a scripted execution with hand-computable
 *    shutdowns must fire the callbacks in replay order.
 *  - Kernel path parity: the batched SoA loop must match the scalar
 *    reference loop — RunResult, observer callback sequence and
 *    AccuracyStats reconciliation — for every registered policy and
 *    every driver kind.
 *  - Policy registry: the names resolve, unknown names are rejected.
 *  - JSONL traces: per-idle-period records reconcile with the
 *    AccuracyStats the same run reports.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>
#include <unistd.h>

#include "reports.hpp"
#include "sim/drivers.hpp"
#include "sim/experiment.hpp"
#include "sim/kernel.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"

namespace pcap::sim {
namespace {

// ---------------------------------------------------------------
// Minimal JSON reader — util/json.hpp is write-only, and the test
// only needs reports.<name>.lines (arrays of strings) from the
// reference file.
// ---------------------------------------------------------------

class MiniJsonReader
{
  public:
    explicit MiniJsonReader(std::string text) : text_(std::move(text))
    {
    }

    /** reports.<name>.lines for every report in the file. */
    std::map<std::string, std::vector<std::string>> referenceLines()
    {
        std::map<std::string, std::vector<std::string>> result;
        expect('{');
        while (peek() != '}') {
            const std::string key = parseString();
            expect(':');
            if (key != "reports") {
                skipValue();
            } else {
                expect('{');
                while (peek() != '}') {
                    const std::string name = parseString();
                    expect(':');
                    result[name] = parseReportLines();
                    if (peek() == ',')
                        ++pos_;
                }
                expect('}');
            }
            if (peek() == ',')
                ++pos_;
        }
        return result;
    }

  private:
    std::vector<std::string> parseReportLines()
    {
        std::vector<std::string> lines;
        expect('{');
        while (peek() != '}') {
            const std::string key = parseString();
            expect(':');
            if (key != "lines") {
                skipValue();
            } else {
                expect('[');
                while (peek() != ']') {
                    lines.push_back(parseString());
                    if (peek() == ',')
                        ++pos_;
                }
                expect(']');
            }
            if (peek() == ',')
                ++pos_;
        }
        expect('}');
        return lines;
    }

    char peek()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\r' || text_[pos_] == '\t'))
            ++pos_;
        EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void expect(char c)
    {
        ASSERT_EQ(peek(), c) << "at offset " << pos_;
        ++pos_;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case 'r': out.push_back('\r'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                // Reference lines are ASCII; decode the low byte.
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                out.push_back(static_cast<char>(
                    std::stoul(hex, nullptr, 16) & 0x7f));
                break;
              }
              default: out.push_back(esc); break;
            }
        }
        expect('"');
        return out;
    }

    void skipValue()
    {
        const char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++pos_;
            while (peek() != close) {
                if (c == '{') {
                    parseString();
                    expect(':');
                }
                skipValue();
                if (peek() == ',')
                    ++pos_;
            }
            ++pos_;
        } else {
            // Number / true / false / null: scan to a delimiter.
            while (pos_ < text_.size() && text_[pos_] != ',' &&
                   text_[pos_] != '}' && text_[pos_] != ']')
                ++pos_;
        }
    }

    std::string text_;
    std::size_t pos_ = 0;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

// ---------------------------------------------------------------
// Reference parity: the kernel/driver path must reproduce the
// committed pre-refactor reference byte for byte.
// ---------------------------------------------------------------

TEST(KernelParity, EveryReportMatchesReference)
{
    std::ifstream ref_file(PCAP_REFERENCE_JSON);
    ASSERT_TRUE(ref_file) << "missing " << PCAP_REFERENCE_JSON;
    std::ostringstream buffer;
    buffer << ref_file.rdbuf();
    MiniJsonReader reader(buffer.str());
    const auto reference = reader.referenceLines();
    ASSERT_EQ(reference.size(), 15u);

    ParallelOptions options;
    options.jobs = 2;
    ParallelEvaluation eval(bench::standardConfig(), options);
    bench::ReportContext ctx{
        eval, [](const ExperimentConfig &config) {
            return std::unique_ptr<EvaluationApi>(
                new ParallelEvaluation(config, {}));
        }};

    for (const bench::Report &report : bench::allReports()) {
        if (report.optIn) {
            EXPECT_EQ(reference.count(report.name), 0u)
                << report.name
                << " is opt-in but present in the reference";
            continue;
        }
        ASSERT_EQ(reference.count(report.name), 1u) << report.name;
        std::ostringstream text;
        report.run(ctx, text);
        EXPECT_EQ(splitLines(text.str()), reference.at(report.name))
            << "report " << report.name
            << " diverged from the reference";
    }
}

// ---------------------------------------------------------------
// Observer callback ordering on a scripted execution
// ---------------------------------------------------------------

/** Records every callback as a compact event string. */
class RecordingObserver final : public SimObserver
{
  public:
    std::vector<std::string> events;
    std::vector<IdlePeriodRecord> records;

    void onExecutionBegin(const ExecutionInput &) override
    {
        events.push_back("begin");
    }
    void onExecutionEnd(const ExecutionInput &,
                        const RunResult &) override
    {
        events.push_back("end");
    }
    void onIdlePeriod(const IdlePeriodRecord &record) override
    {
        events.push_back(std::string("idle:") +
                         idleOutcomeName(record.outcome));
        records.push_back(record);
    }
    void onShutdownIssued(TimeUs at) override
    {
        events.push_back("shutdown@" + std::to_string(at));
    }
    void onShutdownIgnored(TimeUs at) override
    {
        events.push_back("ignored@" + std::to_string(at));
    }
    void onDiskStateChange(TimeUs, power::DiskState from,
                           power::DiskState to) override
    {
        events.push_back(std::string("state:") +
                         power::diskStateName(from) + "->" +
                         power::diskStateName(to));
    }
    void onSpinUpServed(TimeUs at, TimeUs) override
    {
        events.push_back("spinup@" + std::to_string(at));
    }

    /** Index of the first event equal to @p needle, or npos. */
    std::size_t indexOf(const std::string &needle) const
    {
        const auto it =
            std::find(events.begin(), events.end(), needle);
        return it == events.end()
                   ? std::string::npos
                   : static_cast<std::size_t>(it - events.begin());
    }
};

/** One process, accesses at 1 s / 2 s / 50 s, end at 100 s. */
ExecutionInput
scriptedInput()
{
    ExecutionInput input;
    input.app = "scripted";
    for (double at : {1.0, 2.0, 50.0}) {
        trace::DiskAccess access;
        access.time = secondsUs(at);
        access.pid = 7;
        access.blocks = 1;
        input.accesses.push_back(access);
    }
    input.processes.push_back({7, 0, secondsUs(100.0)});
    input.endTime = secondsUs(100.0);
    return input;
}

TEST(ObserverOrdering, ScriptedGlobalTimeoutRun)
{
    // TP with a 10 s timer: the 1 s gap is short; the 2 s -> 50 s
    // gap spins down at 12 s (hit); the trailing 50 s -> 100 s gap
    // spins down at 60 s (hit); the 50 s access pays one spin-up.
    RecordingObserver observer;
    SimulationKernel kernel(SimParams{}, observer);
    PolicySession session(policyByName("TP"));
    GlobalDriver driver(session);

    const RunResult result =
        kernel.runExecution(scriptedInput(), driver);

    EXPECT_EQ(result.shutdowns, 2u);
    EXPECT_EQ(result.spinUps, 1u);
    EXPECT_EQ(result.ignoredShutdowns, 0u);
    EXPECT_EQ(result.accuracy.opportunities, 2u);
    EXPECT_EQ(result.accuracy.hitPrimary, 2u);
    EXPECT_EQ(result.accuracy.hits(), 2u);
    EXPECT_EQ(result.accuracy.misses(), 0u);
    EXPECT_EQ(result.accuracy.notPredicted, 0u);

    // One record per idle period, in replay order.
    ASSERT_EQ(observer.records.size(), 3u);
    EXPECT_EQ(observer.records[0].outcome, IdleOutcome::Short);
    EXPECT_EQ(observer.records[0].start, secondsUs(1.0));
    EXPECT_EQ(observer.records[0].end, secondsUs(2.0));
    EXPECT_EQ(observer.records[0].shutdownAt, -1);
    EXPECT_EQ(observer.records[1].outcome, IdleOutcome::HitPrimary);
    EXPECT_EQ(observer.records[1].shutdownAt, secondsUs(12.0));
    EXPECT_EQ(observer.records[1].source,
              pred::DecisionSource::Primary);
    EXPECT_EQ(observer.records[2].outcome, IdleOutcome::HitPrimary);
    EXPECT_EQ(observer.records[2].shutdownAt, secondsUs(60.0));
    for (const IdlePeriodRecord &record : observer.records)
        EXPECT_EQ(record.pid, kMergedStreamPid);

    // Callback ordering: begin first, end last; the hit gap is
    // classified before its shutdown is issued, and the spin-up at
    // 50 s happens after that shutdown.
    ASSERT_FALSE(observer.events.empty());
    EXPECT_EQ(observer.events.front(), "begin");
    EXPECT_EQ(observer.events.back(), "end");
    const std::size_t hit = observer.indexOf("idle:hit_primary");
    const std::size_t down = observer.indexOf(
        "shutdown@" + std::to_string(secondsUs(12.0)));
    const std::size_t up = observer.indexOf(
        "spinup@" + std::to_string(secondsUs(50.0)));
    ASSERT_NE(hit, std::string::npos);
    ASSERT_NE(down, std::string::npos);
    ASSERT_NE(up, std::string::npos);
    EXPECT_LT(hit, down);
    EXPECT_LT(down, up);

    // The disk reported both spin-downs and the spin-up recovery.
    const auto count = [&](const std::string &event) {
        return std::count(observer.events.begin(),
                          observer.events.end(), event);
    };
    EXPECT_EQ(count("state:idle->standby"), 2);
    EXPECT_EQ(count("state:standby->active"), 1);
    EXPECT_EQ(count("ignored@" + std::to_string(secondsUs(12.0))),
              0);
}

TEST(ObserverOrdering, NullObserverRunsMatchObservedRuns)
{
    // Observers are passive: attaching one must not change results.
    const ExecutionInput input = scriptedInput();
    PolicySession session_a(policyByName("PCAP"));
    PolicySession session_b(policyByName("PCAP"));
    GlobalDriver driver_a(session_a);
    GlobalDriver driver_b(session_b);
    RecordingObserver observer;
    SimulationKernel plain{SimParams{}};
    SimulationKernel observed(SimParams{}, observer);

    const RunResult a = plain.runExecution(input, driver_a);
    const RunResult b = observed.runExecution(input, driver_b);
    EXPECT_EQ(a.accuracy.opportunities, b.accuracy.opportunities);
    EXPECT_EQ(a.accuracy.hits(), b.accuracy.hits());
    EXPECT_EQ(a.accuracy.misses(), b.accuracy.misses());
    EXPECT_EQ(a.shutdowns, b.shutdowns);
    EXPECT_EQ(a.spinUps, b.spinUps);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(ObserverOrdering, HistogramBoundariesMustAscend)
{
    EXPECT_EXIT(
        IdleHistogramObserver({secondsUs(1.0), secondsUs(1.0)}),
        testing::ExitedWithCode(1), "ascending");
}

// ---------------------------------------------------------------
// Kernel path parity: the batched SoA loop is checked against the
// scalar reference loop — identical RunResults and identical
// observer callback sequences for every registered policy and every
// driver kind. onBatchFlush is batched-path bookkeeping, not replay
// semantics, and is deliberately outside this contract (the
// RecordingObserver does not record it).
// ---------------------------------------------------------------

void
expectSameResult(const RunResult &a, const RunResult &b,
                 const std::string &label)
{
    EXPECT_EQ(a.accuracy.opportunities, b.accuracy.opportunities)
        << label;
    EXPECT_EQ(a.accuracy.hitPrimary, b.accuracy.hitPrimary) << label;
    EXPECT_EQ(a.accuracy.hitBackup, b.accuracy.hitBackup) << label;
    EXPECT_EQ(a.accuracy.missPrimary, b.accuracy.missPrimary)
        << label;
    EXPECT_EQ(a.accuracy.missBackup, b.accuracy.missBackup) << label;
    EXPECT_EQ(a.accuracy.notPredicted, b.accuracy.notPredicted)
        << label;
    using power::EnergyCategory;
    for (EnergyCategory category :
         {EnergyCategory::BusyIo, EnergyCategory::IdleShort,
          EnergyCategory::IdleLong, EnergyCategory::PowerCycle})
        EXPECT_DOUBLE_EQ(a.energy.get(category),
                         b.energy.get(category))
            << label;
    EXPECT_EQ(a.shutdowns, b.shutdowns) << label;
    EXPECT_EQ(a.spinUps, b.spinUps) << label;
    EXPECT_EQ(a.ignoredShutdowns, b.ignoredShutdowns) << label;
    EXPECT_EQ(a.totalSpinUpDelay, b.totalSpinUpDelay) << label;
}

void
expectSameObservations(const RecordingObserver &a,
                       const RecordingObserver &b,
                       const std::string &label)
{
    EXPECT_EQ(a.events, b.events) << label;
    ASSERT_EQ(a.records.size(), b.records.size()) << label;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const IdlePeriodRecord &ra = a.records[i];
        const IdlePeriodRecord &rb = b.records[i];
        EXPECT_EQ(ra.pid, rb.pid) << label << " record " << i;
        EXPECT_EQ(ra.start, rb.start) << label << " record " << i;
        EXPECT_EQ(ra.end, rb.end) << label << " record " << i;
        EXPECT_EQ(ra.shutdownAt, rb.shutdownAt)
            << label << " record " << i;
        EXPECT_EQ(ra.source, rb.source) << label << " record " << i;
        EXPECT_EQ(ra.outcome, rb.outcome) << label << " record " << i;
    }
}

std::uint64_t
countEvents(const std::vector<std::string> &events,
            const std::string &needle)
{
    return static_cast<std::uint64_t>(
        std::count(events.begin(), events.end(), needle));
}

/** Outcome counts in the recorded stream must reconcile with the
 * AccuracyStats the same run reported. */
void
expectRecordsReconcile(const RecordingObserver &observer,
                       const RunResult &result,
                       const std::string &label)
{
    const AccuracyStats &stats = result.accuracy;
    EXPECT_EQ(countEvents(observer.events, "idle:hit_primary"),
              stats.hitPrimary)
        << label;
    EXPECT_EQ(countEvents(observer.events, "idle:hit_backup"),
              stats.hitBackup)
        << label;
    EXPECT_EQ(countEvents(observer.events, "idle:miss_primary"),
              stats.missPrimary)
        << label;
    EXPECT_EQ(countEvents(observer.events, "idle:miss_backup"),
              stats.missBackup)
        << label;
    EXPECT_EQ(countEvents(observer.events, "idle:not_predicted"),
              stats.notPredicted)
        << label;
    // Every idle period emits exactly one record; Short periods are
    // recorded but never tallied.
    EXPECT_EQ(observer.records.size(),
              stats.hits() + stats.misses() + stats.notPredicted +
                  countEvents(observer.events, "idle:short"))
        << label;
}

/** Realistic multi-execution inputs: enough events to cross many
 * kKernelBatchEvents boundaries, forks, and real idle structure. */
const std::vector<ExecutionInput> &
parityInputs()
{
    static Evaluation *eval = [] {
        ExperimentConfig config;
        config.maxExecutions = 2;
        return new Evaluation(config);
    }();
    return eval->inputs("mozilla");
}

TEST(KernelPathParity, EveryPolicyGlobalReplayMatchesScalar)
{
    const std::vector<ExecutionInput> &inputs = parityInputs();
    ASSERT_FALSE(inputs.empty());
    std::size_t events = 0;
    for (const ExecutionInput &input : inputs)
        events += input.eventTimes().size();
    ASSERT_GT(events, kKernelBatchEvents)
        << "parity inputs must cross a batch boundary";

    for (const std::string &name : policyNames()) {
        RecordingObserver scalar_obs, batched_obs;
        SimulationKernel scalar(SimParams{}, scalar_obs,
                                KernelPath::Scalar);
        SimulationKernel batched(SimParams{}, batched_obs,
                                 KernelPath::Batched);
        PolicySession scalar_session(policyByName(name));
        PolicySession batched_session(policyByName(name));
        GlobalDriver scalar_driver(scalar_session);
        GlobalDriver batched_driver(batched_session);

        const RunResult a = scalar.run(inputs, scalar_driver);
        const RunResult b = batched.run(inputs, batched_driver);
        expectSameResult(a, b, name);
        expectSameObservations(scalar_obs, batched_obs, name);
        expectRecordsReconcile(batched_obs, b, name);

        // The uninstrumented batched fast path (compile-time null
        // observer, notification-free disk) must produce the same
        // RunResult as the instrumented scalar reference.
        SimulationKernel fast{SimParams{}};
        PolicySession fast_session(policyByName(name));
        GlobalDriver fast_driver(fast_session);
        const RunResult c = fast.run(inputs, fast_driver);
        expectSameResult(a, c, name + " (uninstrumented)");
    }
}

TEST(KernelPathParity, EveryDriverKindMatchesScalar)
{
    // One representative input set per replay order plus the tiny
    // scripted execution (shorter than one batch: tail-only path).
    std::vector<ExecutionInput> inputs = parityInputs();
    inputs.push_back(scriptedInput());

    const auto compare = [&](PolicyDriver &scalar_driver,
                             PolicyDriver &batched_driver,
                             const std::string &label) {
        RecordingObserver scalar_obs, batched_obs;
        SimulationKernel scalar(SimParams{}, scalar_obs,
                                KernelPath::Scalar);
        SimulationKernel batched(SimParams{}, batched_obs,
                                 KernelPath::Batched);
        const RunResult a = scalar.run(inputs, scalar_driver);
        const RunResult b = batched.run(inputs, batched_driver);
        expectSameResult(a, b, label);
        expectSameObservations(scalar_obs, batched_obs, label);
        expectRecordsReconcile(batched_obs, b, label);
    };

    {
        PolicySession a(policyByName("PCAP"));
        PolicySession b(policyByName("PCAP"));
        LocalDriver scalar_driver(a), batched_driver(b);
        compare(scalar_driver, batched_driver, "local/PCAP");
    }
    {
        GlobalDriver::Options options;
        options.multiState = true;
        PolicySession a(policyByName("PCAPa"));
        PolicySession b(policyByName("PCAPa"));
        GlobalDriver scalar_driver(a, options);
        GlobalDriver batched_driver(b, options);
        compare(scalar_driver, batched_driver,
                "global-multistate/PCAPa");
    }
    {
        BaseDriver scalar_driver, batched_driver;
        compare(scalar_driver, batched_driver, "base");
    }
    {
        OracleDriver scalar_driver, batched_driver;
        compare(scalar_driver, batched_driver, "oracle");
    }
}

// ---------------------------------------------------------------
// Policy registry
// ---------------------------------------------------------------

TEST(PolicyRegistry, NamesInPaperOrder)
{
    const std::vector<std::string> expected = {
        "TP",     "LT",    "LTa", "PCAP", "PCAPh", "PCAPf",
        "PCAPfh", "PCAPa", "EA",  "SB",   "ATP"};
    EXPECT_EQ(policyNames(), expected);
}

TEST(PolicyRegistry, FindPolicyResolvesConfigs)
{
    const auto pcap = findPolicy("PCAP");
    ASSERT_TRUE(pcap.has_value());
    EXPECT_EQ(pcap->label, "PCAP");
    EXPECT_EQ(pcap->kind, PolicyKind::Pcap);

    const auto lta = findPolicy("LTa");
    ASSERT_TRUE(lta.has_value());
    EXPECT_FALSE(lta->reuseTables);

    EXPECT_FALSE(findPolicy("bogus").has_value());
    EXPECT_FALSE(findPolicy("pcap").has_value()) // case-sensitive
        << "registry lookups are exact";
}

TEST(PolicyRegistry, UnknownNameIsRejected)
{
    EXPECT_EXIT(policyByName("no-such-policy"),
                testing::ExitedWithCode(1), "unknown policy");
}

// ---------------------------------------------------------------
// LocalDriver: accesses without a process span are dropped loudly
// but harmlessly (satellite of the refactor).
// ---------------------------------------------------------------

TEST(LocalDriverTest, UnknownPidAccessIsDroppedNotFatal)
{
    ExecutionInput clean = scriptedInput();

    ExecutionInput dirty = scriptedInput();
    trace::DiskAccess stray;
    stray.time = secondsUs(3.0);
    stray.pid = 99; // no process span
    stray.blocks = 1;
    dirty.accesses.insert(dirty.accesses.begin() + 2, stray);

    PolicySession session_a(policyByName("TP"));
    PolicySession session_b(policyByName("TP"));
    const SimParams params;
    const AccuracyStats a = runLocal({clean}, session_a, params);
    testing::internal::CaptureStderr();
    const AccuracyStats b = runLocal({dirty}, session_b, params);
    const std::string log = testing::internal::GetCapturedStderr();

    EXPECT_NE(log.find("pid 99"), std::string::npos)
        << "dropped access must be reported";
    EXPECT_EQ(a.opportunities, b.opportunities);
    EXPECT_EQ(a.hits(), b.hits());
    EXPECT_EQ(a.misses(), b.misses());
    EXPECT_EQ(a.notPredicted, b.notPredicted);
}

// ---------------------------------------------------------------
// JSONL trace reconciliation
// ---------------------------------------------------------------

std::uint64_t
countOutcome(const std::vector<std::string> &lines,
             const std::string &outcome)
{
    const std::string needle = "\"outcome\":\"" + outcome + "\"";
    std::uint64_t count = 0;
    for (const std::string &line : lines)
        if (line.find(needle) != std::string::npos)
            ++count;
    return count;
}

TEST(TraceObserver, JsonlRecordsReconcileWithAccuracyStats)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("pcap-test-traces-" + std::to_string(getpid()));
    fs::remove_all(dir);

    ExperimentConfig config;
    config.maxExecutions = 2;
    ParallelOptions options;
    options.jobs = 1;
    options.traceDir = dir.string();
    ParallelEvaluation eval(config, options);

    const GlobalOutcome outcome =
        eval.globalRun("mozilla", policyByName("PCAP"));
    const AccuracyStats &stats = outcome.run.accuracy;

    // Exactly one trace file for the one computed cell.
    fs::path trace_path;
    int files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        ++files;
        trace_path = entry.path();
    }
    ASSERT_EQ(files, 1);
    // maxExecutions = 2 is a non-default experiment config, so the
    // stem carries a -c<confighash> digest between app and policy.
    const std::string name = trace_path.filename().string();
    EXPECT_EQ(name.rfind("global-mozilla-c", 0), 0u) << name;
    EXPECT_NE(name.find("-PCAP-"), std::string::npos) << name;

    std::ifstream trace(trace_path);
    ASSERT_TRUE(trace);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(trace, line))
        lines.push_back(line);

    // Per-record outcome counts must reconcile with the stats the
    // same run reported.
    EXPECT_EQ(countOutcome(lines, "hit_primary"), stats.hitPrimary);
    EXPECT_EQ(countOutcome(lines, "hit_backup"), stats.hitBackup);
    EXPECT_EQ(countOutcome(lines, "miss_primary"),
              stats.missPrimary);
    EXPECT_EQ(countOutcome(lines, "miss_backup"), stats.missBackup);
    EXPECT_EQ(countOutcome(lines, "not_predicted"),
              stats.notPredicted);
    // Short periods are traced too, but never tallied: record count
    // = stats total + shorts.
    const std::uint64_t tallied = stats.hits() + stats.misses() +
                                  stats.notPredicted;
    EXPECT_EQ(lines.size(),
              tallied + countOutcome(lines, "short"));
    EXPECT_GT(lines.size(), tallied);

    fs::remove_all(dir);
}

} // namespace
} // namespace pcap::sim
