/**
 * @file
 * Global Shutdown Predictor tests (Section 5): per-process local
 * predictors, consent composition, fork/exit handling and
 * last-decision attribution.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/global.hpp"
#include "core/pcap.hpp"
#include "pred/timeout.hpp"

namespace pcap::core {
namespace {

using pred::DecisionSource;
using pred::ShutdownDecision;

trace::DiskAccess
access(TimeUs time, Pid pid, Address pc = 0x1000, Fd fd = 3)
{
    trace::DiskAccess a;
    a.time = time;
    a.pid = pid;
    a.pc = pc;
    a.fd = fd;
    return a;
}

GlobalShutdownPredictor
makeTimeoutGlobal(TimeUs timeout = secondsUs(10))
{
    return GlobalShutdownPredictor(
        [timeout](Pid, TimeUs start) {
            return std::make_unique<pred::TimeoutPredictor>(timeout,
                                                            start);
        });
}

TEST(GlobalPredictor, EmptySystemConsents)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    const ShutdownDecision decision = gsp.globalDecision();
    EXPECT_EQ(decision.earliest, 0);
    EXPECT_EQ(decision.source, DecisionSource::None);
    EXPECT_EQ(gsp.liveCount(), 0u);
}

TEST(GlobalPredictor, IoLessProcessConsentsFromStart)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    gsp.processStart(1, secondsUs(5));
    const ShutdownDecision decision = gsp.globalDecision();
    EXPECT_EQ(decision.earliest, secondsUs(5));
    EXPECT_EQ(decision.source, DecisionSource::None);
}

TEST(GlobalPredictor, SingleProcessFollowsItsPredictor)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    gsp.processStart(1, 0);
    const ShutdownDecision decision =
        gsp.onAccess(access(secondsUs(3), 1));
    EXPECT_EQ(decision.earliest, secondsUs(13));
    EXPECT_EQ(decision.source, DecisionSource::Primary);
}

TEST(GlobalPredictor, LatestConsentWins)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    gsp.processStart(1, 0);
    gsp.processStart(2, 0);
    gsp.onAccess(access(secondsUs(1), 1));
    const ShutdownDecision decision =
        gsp.onAccess(access(secondsUs(4), 2));
    // Process 2's timer expires last: the disk may only spin down
    // once EVERY process consents.
    EXPECT_EQ(decision.earliest, secondsUs(14));
}

TEST(GlobalPredictor, StaleConsentDoesNotBlock)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    gsp.processStart(1, 0);
    gsp.processStart(2, 0);
    gsp.onAccess(access(secondsUs(1), 2));
    // Much later, process 1 acts; process 2's old decision (expires
    // at 11 s) is already satisfied and does not delay anything.
    const ShutdownDecision decision =
        gsp.onAccess(access(secondsUs(100), 1));
    EXPECT_EQ(decision.earliest, secondsUs(110));
}

TEST(GlobalPredictor, ExitRemovesConstraint)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    gsp.processStart(1, 0);
    gsp.processStart(2, 0);
    gsp.onAccess(access(secondsUs(1), 1));
    gsp.onAccess(access(secondsUs(5), 2)); // blocks until 15 s
    EXPECT_EQ(gsp.globalDecision().earliest, secondsUs(15));

    gsp.processExit(2, secondsUs(6));
    EXPECT_EQ(gsp.globalDecision().earliest, secondsUs(11));
    EXPECT_FALSE(gsp.isLive(2));
    EXPECT_TRUE(gsp.isLive(1));
}

TEST(GlobalPredictor, NeverDecisionDominates)
{
    // One process with the backup disabled never consents after I/O.
    auto table = std::make_shared<PredictionTable>();
    GlobalShutdownPredictor gsp(
        [table](Pid pid, TimeUs start)
            -> std::unique_ptr<pred::ShutdownPredictor> {
            if (pid == 2) {
                PcapConfig config;
                config.backupEnabled = false;
                return std::make_unique<PcapPredictor>(config, table,
                                                       start);
            }
            return std::make_unique<pred::TimeoutPredictor>(
                secondsUs(10), start);
        });
    gsp.processStart(1, 0);
    gsp.processStart(2, 0);
    gsp.onAccess(access(secondsUs(1), 1));
    gsp.onAccess(access(secondsUs(2), 2));
    EXPECT_EQ(gsp.globalDecision().earliest, kTimeNever);
    EXPECT_EQ(gsp.globalDecision().source, DecisionSource::None);
}

TEST(GlobalPredictor, AttributionFollowsTheLastDecision)
{
    // Process 1 runs trained PCAP (primary); process 2 runs TP. The
    // global shutdown is attributed to whichever decision is latest.
    auto table = std::make_shared<PredictionTable>();
    TableKey trained;
    trained.signature = 0x1000;
    table->train(trained);

    GlobalShutdownPredictor gsp(
        [table](Pid pid, TimeUs start)
            -> std::unique_ptr<pred::ShutdownPredictor> {
            if (pid == 1) {
                return std::make_unique<PcapPredictor>(PcapConfig{},
                                                       table, start);
            }
            return std::make_unique<pred::TimeoutPredictor>(
                secondsUs(10), start);
        });
    gsp.processStart(1, 0);
    gsp.processStart(2, 0);

    gsp.onAccess(access(secondsUs(1), 2));
    // PCAP predicts at +1 s (wait-window); TP's +10 s from 1 s is
    // later, so the backup-style TP attribution wins.
    ShutdownDecision decision =
        gsp.onAccess(access(secondsUs(2), 1, 0x1000));
    EXPECT_EQ(decision.earliest, secondsUs(11));
    EXPECT_EQ(decision.source, DecisionSource::Primary); // TP's own

    // Once TP's timer is long past, PCAP's fresh primary decision is
    // the latest one.
    decision = gsp.onAccess(access(secondsUs(60), 1, 0x1000));
    EXPECT_EQ(decision.earliest, secondsUs(61));
    EXPECT_EQ(decision.source, DecisionSource::Primary);
    EXPECT_EQ(gsp.localDecision(1), decision);
}

TEST(GlobalPredictor, PerProcessGapsAreComputedIndependently)
{
    // Two PCAP processes with interleaved accesses: each process's
    // idle periods are its own, not the merged stream's.
    auto table = std::make_shared<PredictionTable>();
    GlobalShutdownPredictor gsp(
        [table](Pid, TimeUs start) {
            return std::make_unique<PcapPredictor>(PcapConfig{},
                                                   table, start);
        });
    gsp.processStart(1, 0);
    gsp.processStart(2, 0);

    // Process 1 accesses at 0 s and 30 s with pc A: its 30 s gap
    // trains signature A. Process 2 fills the middle of that gap, so
    // the merged stream never has a 30 s gap.
    gsp.onAccess(access(secondsUs(0), 1, 0xA));
    gsp.onAccess(access(secondsUs(10), 2, 0xB));
    gsp.onAccess(access(secondsUs(20), 2, 0xB));
    gsp.onAccess(access(secondsUs(30), 1, 0xA));

    TableKey key_a;
    key_a.signature = 0xA;
    EXPECT_TRUE(table->contains(key_a));
}

TEST(GlobalPredictorDeath, DuplicateStartPanics)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    gsp.processStart(1, 0);
    EXPECT_DEATH(gsp.processStart(1, 0), "already live");
}

TEST(GlobalPredictorDeath, UnknownPidAccessPanics)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    EXPECT_DEATH(gsp.onAccess(access(0, 99)), "unknown pid");
}

TEST(GlobalPredictorDeath, UnknownPidExitPanics)
{
    GlobalShutdownPredictor gsp = makeTimeoutGlobal();
    EXPECT_DEATH(gsp.processExit(99, 0), "unknown pid");
}

TEST(GlobalPredictorDeath, NullFactoryIsFatal)
{
    EXPECT_DEATH(GlobalShutdownPredictor(nullptr), "factory");
}

} // namespace
} // namespace pcap::core
