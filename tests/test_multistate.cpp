/**
 * @file
 * Tests of the multi-state extension (Section 7 future work): the
 * low-power idle mode of the disk model and the multi-state global
 * runner.
 */

#include <gtest/gtest.h>

#include "power/disk.hpp"
#include "sim/simulator.hpp"

namespace pcap {
namespace {

using power::DiskState;
using power::EnergyCategory;
using power::PowerManagedDisk;

TEST(LowPowerMode, EntryOnlyFromIdle)
{
    PowerManagedDisk disk(power::fujitsuMhf2043at());
    // Busy: refused.
    disk.request(0, 1000);
    EXPECT_FALSE(disk.enterLowPower(millisUs(10)));

    // Idle: accepted.
    EXPECT_TRUE(disk.enterLowPower(secondsUs(10)));
    EXPECT_EQ(disk.state(), DiskState::LowPower);
    EXPECT_EQ(disk.lowPowerCount(), 1u);

    // Already low-power: refused.
    EXPECT_FALSE(disk.enterLowPower(secondsUs(11)));

    // Standby: refused.
    ASSERT_TRUE(disk.shutdown(secondsUs(12)));
    EXPECT_FALSE(disk.enterLowPower(secondsUs(14)));
    disk.finish(secondsUs(20));
}

TEST(LowPowerMode, AccruesReducedPower)
{
    const power::DiskParams params = power::fujitsuMhf2043at();
    PowerManagedDisk disk(params);
    const TimeUs done = disk.request(0, 1);
    ASSERT_TRUE(disk.enterLowPower(done + secondsUs(2)));
    disk.request(done + secondsUs(10), 1);
    disk.finish(done + secondsUs(11));

    // 2 s at idle power, 8 s at low power, within the same long gap.
    const double expected =
        power::energyJ(params.idlePowerW, secondsUs(2)) +
        power::energyJ(params.lowPowerIdleW, secondsUs(8));
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::IdleLong),
                expected, 1e-9);
}

TEST(LowPowerMode, ExitPaysHeadLoadOnNextRequest)
{
    const power::DiskParams params = power::fujitsuMhf2043at();
    PowerManagedDisk disk(params);
    const TimeUs done = disk.request(0, 1);
    ASSERT_TRUE(disk.enterLowPower(done));
    const TimeUs completion = disk.request(secondsUs(3), 1);
    EXPECT_EQ(completion, secondsUs(3) + params.lowPowerExitTime +
                              params.serviceTimePerBlock);
    disk.finish(completion);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::PowerCycle),
                params.lowPowerExitEnergyJ, 1e-9);
    // No spin-up happened.
    EXPECT_EQ(disk.spinUpCount(), 0u);
}

TEST(LowPowerMode, ShutdownFromLowPowerWorks)
{
    PowerManagedDisk disk(power::fujitsuMhf2043at());
    const TimeUs done = disk.request(0, 1);
    ASSERT_TRUE(disk.enterLowPower(done));
    EXPECT_TRUE(disk.shutdown(done + secondsUs(1)));
    EXPECT_EQ(disk.state(), DiskState::Standby);
    disk.finish(done + secondsUs(10));
}

TEST(LowPowerMode, MispredictionIsCheaperThanSpinCycle)
{
    // A false "long idle" prediction on a 3 s gap: low-power parking
    // costs the head-load; a full spin-down costs the whole cycle.
    const power::DiskParams params = power::fujitsuMhf2043at();

    PowerManagedDisk parked(params);
    TimeUs done = parked.request(0, 1);
    parked.enterLowPower(done);
    parked.request(done + secondsUs(3), 1);
    parked.finish(done + secondsUs(4));

    PowerManagedDisk cycled(params);
    done = cycled.request(0, 1);
    cycled.shutdown(done);
    cycled.request(done + secondsUs(3), 1);
    cycled.finish(done + secondsUs(4));

    EXPECT_LT(parked.ledger().total(), cycled.ledger().total());
}

TEST(MultiStateRunner, SameAccuracyLessEnergy)
{
    // Scripted stream with trained PCAP signatures: two executions
    // so the second one predicts.
    sim::ExecutionInput input;
    input.app = "ms-test";
    TimeUs now = 0;
    for (int i = 0; i < 12; ++i) {
        trace::DiskAccess access;
        access.time = now;
        access.pid = 100;
        access.pc = 0x1000;
        access.fd = 3;
        access.blocks = 1;
        input.accesses.push_back(access);
        now += secondsUs(30);
    }
    input.endTime = now;
    input.processes.push_back({100, 0, now});

    sim::SimParams params;
    sim::PolicySession plain(sim::PolicyConfig::pcapBase());
    const sim::RunResult plain_run =
        sim::runGlobal({input, input}, plain, params);

    sim::PolicySession ms(sim::PolicyConfig::pcapBase());
    const sim::RunResult ms_run =
        sim::runGlobalMultiState({input, input}, ms, params);

    EXPECT_EQ(ms_run.accuracy.hits(), plain_run.accuracy.hits());
    EXPECT_EQ(ms_run.accuracy.misses(),
              plain_run.accuracy.misses());
    // The wait-window before each predicted spin-down is spent at
    // low power: strictly less energy.
    EXPECT_LT(ms_run.energy.total(), plain_run.energy.total());
}

} // namespace
} // namespace pcap
