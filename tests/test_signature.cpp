/**
 * @file
 * Path-signature tests, including the encoding properties the paper
 * discusses in Section 3.2 (arithmetic addition, 4-byte width,
 * aliasing of permuted paths).
 */

#include <gtest/gtest.h>

#include "core/signature.hpp"

namespace pcap::core {
namespace {

TEST(PathSignature, StartsUnstarted)
{
    PathSignature signature;
    EXPECT_FALSE(signature.started());
    EXPECT_EQ(signature.value(), 0u);
}

TEST(PathSignature, ExtendAddsPcs)
{
    PathSignature signature;
    signature.extend(0x100);
    signature.extend(0x200);
    signature.extend(0x100);
    EXPECT_EQ(signature.value(), 0x400u);
    EXPECT_TRUE(signature.started());
}

TEST(PathSignature, FirstExtendActsAsReset)
{
    PathSignature signature;
    signature.extend(0x123);
    EXPECT_EQ(signature.value(), 0x123u);
}

TEST(PathSignature, ResetOverwrites)
{
    PathSignature signature;
    signature.extend(0x100);
    signature.extend(0x200);
    signature.reset(0x50);
    EXPECT_EQ(signature.value(), 0x50u);
}

TEST(PathSignature, AdditionWrapsModulo32Bits)
{
    PathSignature signature;
    signature.reset(0xffffffff);
    signature.extend(2);
    EXPECT_EQ(signature.value(), 1u);
}

TEST(PathSignature, PaperFigure3Example)
{
    // Path {PC1, PC2, PC1} encodes as PC1 + PC2 + PC1 (Section 3.2).
    const Address pc1 = 0x08048010;
    const Address pc2 = 0x08048020;
    EXPECT_EQ(PathSignature::ofPath({pc1, pc2, pc1}),
              pc1 + pc2 + pc1);
}

TEST(PathSignature, PermutedPathsAliasByDesign)
{
    // The paper notes {PC1, PC2, PC1} and {PC1, PC1, PC2} encode to
    // the same signature; it observed no such aliasing in practice
    // and kept the cheap encoding. The property is intentional.
    const Address pc1 = 0x1000;
    const Address pc2 = 0x2000;
    EXPECT_EQ(PathSignature::ofPath({pc1, pc2, pc1}),
              PathSignature::ofPath({pc1, pc1, pc2}));
}

TEST(PathSignature, DifferentMultisetsDiffer)
{
    EXPECT_NE(PathSignature::ofPath({0x1000, 0x2000}),
              PathSignature::ofPath({0x1000, 0x3000}));
    EXPECT_NE(PathSignature::ofPath({0x1000}),
              PathSignature::ofPath({0x1000, 0x1000}));
}

TEST(PathSignature, ClearForgetsEverything)
{
    PathSignature signature;
    signature.extend(0x100);
    signature.clear();
    EXPECT_FALSE(signature.started());
    EXPECT_EQ(signature.value(), 0u);
    // Extending again starts a fresh path.
    signature.extend(0x5);
    EXPECT_EQ(signature.value(), 0x5u);
}

} // namespace
} // namespace pcap::core
