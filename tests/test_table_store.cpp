/**
 * @file
 * Prediction-table persistence tests (Section 4.2's initialization
 * files).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/table_store.hpp"

namespace pcap::core {
namespace {

class TableStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (std::filesystem::temp_directory_path() /
                "pcap_table_store_test")
                   .string();
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TableKey
key(std::uint32_t signature)
{
    TableKey k;
    k.signature = signature;
    return k;
}

TEST_F(TableStoreTest, SaveThenLoadRoundTrips)
{
    TableStore store(dir_);
    PredictionTable table;
    table.train(key(1));
    table.train(key(2));
    ASSERT_EQ(store.save("mozilla", "PCAP", table), "");

    PredictionTable loaded;
    bool found = false;
    ASSERT_EQ(store.load("mozilla", "PCAP", loaded, found), "");
    EXPECT_TRUE(found);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(loaded.contains(key(1)));
}

TEST_F(TableStoreTest, MissingTableIsNotAnError)
{
    TableStore store(dir_);
    PredictionTable loaded;
    bool found = true;
    EXPECT_EQ(store.load("nedit", "PCAP", loaded, found), "");
    EXPECT_FALSE(found);
}

TEST_F(TableStoreTest, VariantsAreSeparateFiles)
{
    TableStore store(dir_);
    PredictionTable base, history;
    base.train(key(1));
    history.train(key(2));
    ASSERT_EQ(store.save("writer", "PCAP", base), "");
    ASSERT_EQ(store.save("writer", "PCAPh", history), "");

    PredictionTable loaded;
    bool found = false;
    ASSERT_EQ(store.load("writer", "PCAPh", loaded, found), "");
    ASSERT_TRUE(found);
    EXPECT_TRUE(loaded.contains(key(2)));
    EXPECT_FALSE(loaded.contains(key(1)));
}

TEST_F(TableStoreTest, SaveOverwritesPreviousTable)
{
    TableStore store(dir_);
    PredictionTable first, second;
    first.train(key(1));
    second.train(key(2));
    ASSERT_EQ(store.save("app", "PCAP", first), "");
    ASSERT_EQ(store.save("app", "PCAP", second), "");

    PredictionTable loaded;
    bool found = false;
    ASSERT_EQ(store.load("app", "PCAP", loaded, found), "");
    ASSERT_TRUE(found);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.contains(key(2)));
}

TEST_F(TableStoreTest, RemoveDeletesTheFile)
{
    TableStore store(dir_);
    PredictionTable table;
    table.train(key(1));
    ASSERT_EQ(store.save("app", "PCAP", table), "");
    EXPECT_TRUE(store.remove("app", "PCAP"));
    EXPECT_FALSE(store.remove("app", "PCAP"));

    PredictionTable loaded;
    bool found = true;
    ASSERT_EQ(store.load("app", "PCAP", loaded, found), "");
    EXPECT_FALSE(found);
}

TEST_F(TableStoreTest, PathForIsStable)
{
    TableStore store(dir_);
    EXPECT_EQ(store.pathFor("app", "PCAPfh"),
              dir_ + "/app.PCAPfh.ptab");
}

} // namespace
} // namespace pcap::core
