/**
 * @file
 * PCAP predictor tests, including a step-by-step replay of the
 * paper's Figure 3 example, wait-window filtering, subpath aliasing,
 * and the history / file-descriptor context variants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pcap.hpp"

namespace pcap::core {
namespace {

using pred::DecisionSource;
using pred::IoContext;
using pred::ShutdownDecision;

constexpr Address kPc1 = 0x08048010;
constexpr Address kPc2 = 0x08048020;
constexpr Address kPc3 = 0x08048030;

IoContext
io(TimeUs time, TimeUs since_prev, Address pc, Fd fd = 3)
{
    IoContext ctx;
    ctx.time = time;
    ctx.sincePrev = since_prev;
    ctx.pc = pc;
    ctx.fd = fd;
    return ctx;
}

struct PcapFixture : ::testing::Test
{
    PcapFixture()
        : table(std::make_shared<PredictionTable>())
    {
    }

    PcapPredictor
    make(PcapConfig config = {})
    {
        return PcapPredictor(config, table);
    }

    std::shared_ptr<PredictionTable> table;
};

TEST_F(PcapFixture, UntrainedPredictorFallsBackToTimeout)
{
    PcapPredictor predictor = make();
    const ShutdownDecision decision =
        predictor.onIo(io(secondsUs(1), -1, kPc1));
    EXPECT_EQ(decision.source, DecisionSource::Backup);
    EXPECT_EQ(decision.earliest, secondsUs(11));
}

TEST_F(PcapFixture, PaperFigure3Walkthrough)
{
    // The exact example of Figure 3: accesses 0.1 s apart at PC1,
    // PC2, PC1, then a 20 s idle period; the sequence repeats.
    PcapPredictor predictor = make();
    const double t0[] = {0.1, 0.2, 0.3};
    const Address pcs[] = {kPc1, kPc2, kPc1};

    // First sequence: no prediction, the path is learned when the
    // long idle period completes.
    TimeUs prev = -1;
    for (int i = 0; i < 3; ++i) {
        const TimeUs t = secondsUs(t0[i]);
        const ShutdownDecision d = predictor.onIo(
            io(t, prev < 0 ? -1 : t - prev, pcs[i]));
        EXPECT_EQ(d.source, DecisionSource::Backup);
        prev = t;
    }
    EXPECT_EQ(predictor.signature(), kPc1 + kPc2 + kPc1);
    EXPECT_EQ(table->size(), 0u); // not yet: idle period not over

    // Second sequence at 20.1..20.3 s: the 19.8 s gap trains the
    // signature, and the repeat of {PC1, PC2, PC1} triggers the
    // shutdown prediction.
    const double t1[] = {20.1, 20.2, 20.3};
    ShutdownDecision last;
    for (int i = 0; i < 3; ++i) {
        const TimeUs t = secondsUs(t1[i]);
        last = predictor.onIo(io(t, t - prev, pcs[i]));
        prev = t;
    }
    EXPECT_EQ(table->size(), 1u);
    EXPECT_EQ(last.source, DecisionSource::Primary);
    EXPECT_EQ(last.earliest, secondsUs(20.3) + secondsUs(1.0));
    EXPECT_EQ(predictor.predictions(), 1u);

    // Third sequence followed immediately by PC2 — the paper's
    // subpath-aliasing case. The prediction fires at the third
    // access; PC2 arriving 0.1 s later falls inside the wait-window,
    // so the shutdown is cancelled and no misprediction is charged.
    const double t2[] = {40.1, 40.2, 40.3};
    for (int i = 0; i < 3; ++i) {
        const TimeUs t = secondsUs(t2[i]);
        last = predictor.onIo(io(t, t - prev, pcs[i]));
        prev = t;
    }
    EXPECT_EQ(last.source, DecisionSource::Primary);
    const TimeUs t_pc2 = secondsUs(40.4);
    last = predictor.onIo(io(t_pc2, t_pc2 - prev, kPc2));
    // Wait time had not expired: shutdown superseded, path continues
    // without interruption.
    EXPECT_EQ(predictor.mispredictionsObserved(), 0u);
    EXPECT_EQ(predictor.signature(), kPc1 + kPc2 + kPc1 + kPc2);
}

TEST_F(PcapFixture, LongIdleResetsThePath)
{
    PcapPredictor predictor = make();
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(1.1), millisUs(100), kPc2));
    // 30 s gap: path reset; the new path starts at kPc3.
    predictor.onIo(io(secondsUs(31.1), secondsUs(30), kPc3));
    EXPECT_EQ(predictor.signature(), kPc3);
}

TEST_F(PcapFixture, MediumIdleContinuesThePath)
{
    PcapPredictor predictor = make();
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    // 3 s gap: above wait-window, below breakeven — no reset.
    predictor.onIo(io(secondsUs(4), secondsUs(3), kPc2));
    EXPECT_EQ(predictor.signature(), kPc1 + kPc2);
}

TEST_F(PcapFixture, SubWaitWindowGapIsInvisible)
{
    PcapConfig config;
    config.useHistory = true;
    PcapPredictor predictor = make(config);
    const std::uint16_t before = predictor.historyBits();
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(1.5), millisUs(500), kPc2));
    EXPECT_EQ(predictor.historyBits(), before);
    EXPECT_EQ(predictor.signature(), kPc1 + kPc2);
}

TEST_F(PcapFixture, SubpathAliasingMispredictionIsCounted)
{
    PcapPredictor predictor = make();
    // Train {kPc1} as a long-idle path.
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc1));
    EXPECT_EQ(table->size(), 1u);
    // The repeat predicts a long idle period, but a 3 s gap follows:
    // a misprediction the wait-window could not filter.
    predictor.onIo(io(secondsUs(34), secondsUs(3), kPc2));
    EXPECT_EQ(predictor.mispredictionsObserved(), 1u);
}

TEST_F(PcapFixture, UnlearnOptionDropsAliasedEntry)
{
    PcapConfig config;
    config.unlearnOnMisprediction = true;
    PcapPredictor predictor = make(config);
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc1));
    EXPECT_EQ(table->size(), 1u);
    predictor.onIo(io(secondsUs(34), secondsUs(3), kPc2));
    EXPECT_EQ(table->size(), 0u);
}

TEST_F(PcapFixture, HistoryContextDisambiguatesAliasedPaths)
{
    PcapConfig config;
    config.useHistory = true;
    PcapPredictor predictor = make(config);

    // Context A: kPc1 under an all-long history is followed by a
    // long idle -> trained as (kPc1, 111111); the repeat predicts.
    predictor.onIo(io(secondsUs(10), -1, kPc1));
    predictor.onIo(io(secondsUs(40), secondsUs(30), kPc1));
    EXPECT_EQ(predictor.decision().source, DecisionSource::Primary);

    // Context B: reach the same kPc1 signature, but with a medium
    // period in the recent history (a 3 s pause, then a long idle
    // that resets the path back to a fresh kPc1).
    predictor.onIo(io(secondsUs(43), secondsUs(3), kPc2));
    predictor.onIo(io(secondsUs(73), secondsUs(30), kPc1));
    EXPECT_EQ(predictor.signature(), kPc1);
    // (kPc1, ...111101) is not in the table: no false prediction.
    EXPECT_EQ(predictor.decision().source, DecisionSource::Backup);

    // The history-less variant sees only the signature and would
    // predict here — the contrast history buys.
    auto base_table = std::make_shared<PredictionTable>();
    PcapPredictor base(PcapConfig{}, base_table);
    base.onIo(io(secondsUs(10), -1, kPc1));
    base.onIo(io(secondsUs(40), secondsUs(30), kPc1));
    base.onIo(io(secondsUs(43), secondsUs(3), kPc2));
    base.onIo(io(secondsUs(73), secondsUs(30), kPc1));
    EXPECT_EQ(base.decision().source, DecisionSource::Primary);
}

TEST_F(PcapFixture, HistoryBitsRecordMediumAndLongPeriods)
{
    PcapConfig config;
    config.useHistory = true;
    config.historyLength = 4;
    PcapPredictor predictor = make(config);
    // Seeded with all 1s (idle-forever cold start).
    EXPECT_EQ(predictor.historyBits(), 0b1111u);

    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(4), secondsUs(3), kPc1)); // 0
    EXPECT_EQ(predictor.historyBits(), 0b1110u);
    predictor.onIo(io(secondsUs(24), secondsUs(20), kPc1)); // 1
    EXPECT_EQ(predictor.historyBits(), 0b1101u);
}

TEST_F(PcapFixture, FdContextDisambiguatesAliasedPaths)
{
    PcapConfig config;
    config.useFd = true;
    PcapPredictor predictor = make(config);

    // Train the path ending at fd 3.
    predictor.onIo(io(secondsUs(1), -1, kPc1, 3));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc1, 3));
    EXPECT_EQ(table->size(), 1u);

    // Same signature arriving through fd 7 does not match.
    predictor.onIo(io(secondsUs(61), secondsUs(30), kPc1, 7));
    EXPECT_EQ(predictor.decision().source, DecisionSource::Backup);
}

TEST_F(PcapFixture, BaseVariantIgnoresFd)
{
    PcapPredictor predictor = make();
    predictor.onIo(io(secondsUs(1), -1, kPc1, 3));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc1, 7));
    // Same signature, different fd: still a primary prediction.
    EXPECT_EQ(predictor.decision().source, DecisionSource::Primary);
}

TEST_F(PcapFixture, TrainingInsertsAreCounted)
{
    PcapPredictor predictor = make();
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc2));
    predictor.onIo(io(secondsUs(61), secondsUs(30), kPc3));
    EXPECT_EQ(predictor.trainingInserts(), 2u);
    EXPECT_EQ(table->size(), 2u);
}

TEST_F(PcapFixture, BackupDisabledYieldsNever)
{
    PcapConfig config;
    config.backupEnabled = false;
    PcapPredictor predictor = make(config);
    const ShutdownDecision decision =
        predictor.onIo(io(secondsUs(1), -1, kPc1));
    EXPECT_EQ(decision.earliest, kTimeNever);
    EXPECT_EQ(decision.source, DecisionSource::None);
}

TEST_F(PcapFixture, ResetExecutionKeepsTheSharedTable)
{
    PcapPredictor predictor = make();
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc1));
    EXPECT_EQ(table->size(), 1u);

    predictor.resetExecution();
    EXPECT_EQ(predictor.signature(), 0u);
    // The trained path predicts again in the next execution — the
    // table-reuse property of Section 4.2.
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    EXPECT_EQ(predictor.decision().source, DecisionSource::Primary);
}

TEST_F(PcapFixture, TwoProcessesShareOneTable)
{
    PcapPredictor a = make();
    PcapPredictor b = make();
    a.onIo(io(secondsUs(1), -1, kPc1));
    a.onIo(io(secondsUs(31), secondsUs(30), kPc1));
    // Process b benefits from a's training immediately.
    b.onIo(io(secondsUs(40), -1, kPc1));
    EXPECT_EQ(b.decision().source, DecisionSource::Primary);
}

TEST_F(PcapFixture, VariantNames)
{
    PcapConfig config;
    EXPECT_EQ(config.variantName(), "PCAP");
    EXPECT_STREQ(make(config).name(), "PCAP");
    config.useHistory = true;
    EXPECT_EQ(config.variantName(), "PCAPh");
    EXPECT_STREQ(make(config).name(), "PCAPh");
    config.useHistory = false;
    config.useFd = true;
    EXPECT_EQ(config.variantName(), "PCAPf");
    EXPECT_STREQ(make(config).name(), "PCAPf");
    config.useHistory = true;
    EXPECT_EQ(config.variantName(), "PCAPfh");
    EXPECT_STREQ(make(config).name(), "PCAPfh");
}

TEST_F(PcapFixture, HitConfirmationRefreshesEntry)
{
    PcapPredictor predictor = make();
    predictor.onIo(io(secondsUs(1), -1, kPc1));
    predictor.onIo(io(secondsUs(31), secondsUs(30), kPc1));
    predictor.onIo(io(secondsUs(61), secondsUs(30), kPc1));
    TableKey key;
    key.signature = kPc1;
    EXPECT_EQ(table->entryOf(key).trainings, 2u);
}

TEST(PcapDeath, NullTableIsFatal)
{
    EXPECT_DEATH(PcapPredictor(PcapConfig{}, nullptr), "null");
}

TEST(PcapDeath, BadHistoryLengthIsFatal)
{
    PcapConfig config;
    config.historyLength = 0;
    EXPECT_DEATH(PcapPredictor(
                     config, std::make_shared<PredictionTable>()),
                 "history length");
}

} // namespace
} // namespace pcap::core
