/**
 * @file
 * Integration tests: the full pipeline (workload models -> file
 * cache -> simulator) through the Evaluation driver, on truncated
 * execution counts so the suite stays fast.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace pcap::sim {
namespace {

ExperimentConfig
fastConfig(int executions = 4)
{
    ExperimentConfig config;
    config.seed = 42;
    config.maxExecutions = executions;
    return config;
}

TEST(Evaluation, InputsAreCachedAndDeterministic)
{
    Evaluation eval(fastConfig());
    const auto &first = eval.inputs("nedit");
    const auto &second = eval.inputs("nedit");
    EXPECT_EQ(&first, &second); // cached

    Evaluation other(fastConfig());
    const auto &fresh = other.inputs("nedit");
    ASSERT_EQ(first.size(), fresh.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i].accesses.size(), fresh[i].accesses.size());
        for (std::size_t j = 0; j < first[i].accesses.size(); ++j)
            ASSERT_EQ(first[i].accesses[j], fresh[i].accesses[j]);
    }
}

TEST(Evaluation, SeedChangesTheWorkload)
{
    Evaluation a(fastConfig());
    ExperimentConfig config = fastConfig();
    config.seed = 43;
    Evaluation b(config);
    const bool differs =
        a.inputs("mozilla")[0].accesses.size() !=
            b.inputs("mozilla")[0].accesses.size() ||
        a.inputs("mozilla")[0].endTime !=
            b.inputs("mozilla")[0].endTime;
    EXPECT_TRUE(differs);
}

TEST(Evaluation, MaxExecutionsCapsTheRun)
{
    Evaluation eval(fastConfig(2));
    EXPECT_EQ(eval.inputs("mozilla").size(), 2u);
    EXPECT_EQ(eval.table1("mozilla").executions, 2);
}

TEST(Evaluation, Table1CountsAreConsistent)
{
    Evaluation eval(fastConfig());
    for (const std::string &app : eval.appNames()) {
        const auto row = eval.table1(app);
        std::uint64_t manual_global = 0;
        std::uint64_t manual_ios = 0;
        for (const auto &input : eval.inputs(app)) {
            manual_global += input.countGlobalOpportunities(
                eval.config().sim.breakeven());
            manual_ios += input.tracedIos;
        }
        EXPECT_EQ(row.globalIdlePeriods, manual_global) << app;
        EXPECT_EQ(row.totalIos, manual_ios) << app;
        EXPECT_GE(row.localIdlePeriods, row.globalIdlePeriods)
            << app << ": local counts sum per-process periods";
    }
}

TEST(Evaluation, NeditHasExactlyOneIdlePeriodPerExecution)
{
    Evaluation eval(fastConfig(5));
    const auto row = eval.table1("nedit");
    EXPECT_EQ(row.globalIdlePeriods,
              static_cast<std::uint64_t>(row.executions));
    EXPECT_EQ(row.localIdlePeriods,
              static_cast<std::uint64_t>(row.executions));
}

TEST(Evaluation, GlobalRunIsDeterministic)
{
    Evaluation a(fastConfig());
    Evaluation b(fastConfig());
    const auto run_a =
        a.globalRun("writer", PolicyConfig::pcapBase());
    const auto run_b =
        b.globalRun("writer", PolicyConfig::pcapBase());
    EXPECT_EQ(run_a.run.accuracy.hits(), run_b.run.accuracy.hits());
    EXPECT_EQ(run_a.run.accuracy.misses(),
              run_b.run.accuracy.misses());
    EXPECT_DOUBLE_EQ(run_a.run.energy.total(),
                     run_b.run.energy.total());
    EXPECT_EQ(run_a.tableEntries, run_b.tableEntries);
}

TEST(Evaluation, EnergyOrderingIdealBestBaseWorst)
{
    Evaluation eval(fastConfig());
    for (const std::string &app : eval.appNames()) {
        const double base = eval.baseRun(app).energy.total();
        const double ideal = eval.idealRun(app).energy.total();
        const double pcap =
            eval.globalRun(app, PolicyConfig::pcapBase())
                .run.energy.total();
        EXPECT_LT(ideal, base) << app;
        // A real policy can beat neither bound.
        EXPECT_LE(ideal, pcap * 1.0001) << app;
        EXPECT_LE(pcap, base * 1.0001) << app;
    }
}

TEST(Evaluation, PcapBeatsTimeoutOnCoverage)
{
    // The paper's central comparison, on the truncated workload.
    Evaluation eval(fastConfig(6));
    double pcap_hits = 0, tp_hits = 0;
    for (const std::string &app : eval.appNames()) {
        pcap_hits += eval.globalRun(app, PolicyConfig::pcapBase())
                         .run.accuracy.hitFraction();
        tp_hits += eval.globalRun(app, PolicyConfig::timeoutPolicy())
                       .run.accuracy.hitFraction();
    }
    EXPECT_GT(pcap_hits, tp_hits);
}

TEST(Evaluation, TableReuseMultipliesPrimaryCoverage)
{
    Evaluation eval(fastConfig(8));
    std::uint64_t with_reuse = 0, without_reuse = 0;
    for (const std::string &app : eval.appNames()) {
        with_reuse += eval.globalRun(app, PolicyConfig::pcapBase())
                          .run.accuracy.hitPrimary;
        without_reuse +=
            eval.globalRun(app, PolicyConfig::pcapNoReuse())
                .run.accuracy.hitPrimary;
    }
    EXPECT_GT(with_reuse, 2 * without_reuse);
}

TEST(Evaluation, TableEntriesStayPaperSized)
{
    // Table 3: prediction tables stay in the tens-to-hundreds range.
    Evaluation eval(fastConfig());
    for (const std::string &app : eval.appNames()) {
        const auto outcome =
            eval.globalRun(app, PolicyConfig::pcapBase());
        EXPECT_GT(outcome.tableEntries, 0u) << app;
        EXPECT_LT(outcome.tableEntries, 500u) << app;
    }
}

TEST(Evaluation, EnergyBreakdownSumsToTotal)
{
    Evaluation eval(fastConfig());
    const RunResult &base = eval.baseRun("xemacs");
    const double sum =
        base.energy.get(power::EnergyCategory::BusyIo) +
        base.energy.get(power::EnergyCategory::IdleShort) +
        base.energy.get(power::EnergyCategory::IdleLong) +
        base.energy.get(power::EnergyCategory::PowerCycle);
    EXPECT_NEAR(sum, base.energy.total(), 1e-9);
}

TEST(EvaluationDeath, UnknownApplicationIsFatal)
{
    Evaluation eval(fastConfig());
    EXPECT_DEATH(eval.inputs("solitaire"), "unknown application");
}

} // namespace
} // namespace pcap::sim
