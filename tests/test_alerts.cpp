/**
 * @file
 * Alert/SLO rule engine tests: pcap-alert-rules-v1 parsing, rule
 * evaluation against a MetricsRegistry and fleet sketches, the
 * simulated-time evidence gate, exit-code mapping, and the shape of
 * the emitted pcap-alerts-v1 block.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/alerts.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "util/json.hpp"

namespace pcap::obs {
namespace {

std::vector<AlertRule>
mustParse(const std::string &text)
{
    AlertRulesLoad load = parseAlertRules(text);
    EXPECT_TRUE(load.ok()) << load.error;
    return std::move(load.rules);
}

TEST(AlertRules, ParsesAllThreeKinds)
{
    std::vector<AlertRule> rules = mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "outliers", "severity": "warn",
         "metric": {"name": "pcap_fleet_outlier_hosts",
                    "agg": "max"},
         "op": ">", "value": 8},
        {"name": "oracle-ratio", "severity": "critical",
         "ratio": {
           "numerator": {"name": "pcap_energy_joules",
                         "labels": {"mode": "global"}},
           "denominator": {"name": "pcap_energy_joules",
                           "labels": {"mode": "ideal"}}},
         "op": ">=", "value": 3.0, "for_sim_seconds": 60},
        {"name": "p99-miss", "severity": "warn",
         "quantile": {"distribution": "miss_fraction",
                      "q": 0.99, "policy": "PCAP"},
         "op": "<", "value": 0.5}
      ]
    })");
    ASSERT_EQ(rules.size(), 3u);

    EXPECT_EQ(rules[0].name, "outliers");
    EXPECT_EQ(rules[0].kind, AlertKind::Threshold);
    EXPECT_EQ(rules[0].severity, AlertSeverity::Warn);
    EXPECT_EQ(rules[0].op, AlertComparator::Gt);
    EXPECT_EQ(rules[0].metric.metric, "pcap_fleet_outlier_hosts");
    EXPECT_EQ(rules[0].metric.agg, MetricAgg::Max);
    EXPECT_DOUBLE_EQ(rules[0].value, 8.0);
    EXPECT_DOUBLE_EQ(rules[0].forSimSeconds, 0.0);

    EXPECT_EQ(rules[1].kind, AlertKind::Ratio);
    EXPECT_EQ(rules[1].severity, AlertSeverity::Critical);
    EXPECT_EQ(rules[1].op, AlertComparator::Ge);
    EXPECT_DOUBLE_EQ(rules[1].forSimSeconds, 60.0);
    ASSERT_EQ(rules[1].numerator.labels.size(), 1u);
    EXPECT_EQ(rules[1].numerator.labels[0].first, "mode");
    EXPECT_EQ(rules[1].numerator.labels[0].second, "global");
    EXPECT_EQ(rules[1].denominator.labels[0].second, "ideal");

    EXPECT_EQ(rules[2].kind, AlertKind::Quantile);
    EXPECT_EQ(rules[2].op, AlertComparator::Lt);
    EXPECT_EQ(rules[2].distribution, "miss_fraction");
    EXPECT_DOUBLE_EQ(rules[2].q, 0.99);
    EXPECT_EQ(rules[2].policy, "PCAP");
}

TEST(AlertRules, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "not json at all",
        R"({"schema": "wrong-schema", "rules": []})",
        R"({"schema": "pcap-alert-rules-v1"})",
        R"({"schema": "pcap-alert-rules-v1", "rules": []})",
        // no condition shape at all
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r", "op": ">", "value": 1}]})",
        // two condition shapes on one rule
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r",
             "metric": {"name": "m"},
             "quantile": {"distribution": "energy_j", "q": 0.5},
             "op": ">", "value": 1}]})",
        // duplicate rule names
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r", "metric": {"name": "m"},
             "op": ">", "value": 1},
            {"name": "r", "metric": {"name": "m"},
             "op": "<", "value": 2}]})",
        // unknown severity / comparator / aggregation
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r", "severity": "fatal",
             "metric": {"name": "m"}, "op": ">", "value": 1}]})",
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r", "metric": {"name": "m"},
             "op": "!=", "value": 1}]})",
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r",
             "metric": {"name": "m", "agg": "median"},
             "op": ">", "value": 1}]})",
        // missing threshold constant
        R"({"schema": "pcap-alert-rules-v1", "rules": [
            {"name": "r", "metric": {"name": "m"}, "op": ">"}]})",
    };
    for (const char *text : bad) {
        AlertRulesLoad load = parseAlertRules(text);
        EXPECT_FALSE(load.ok()) << text;
        EXPECT_FALSE(load.error.empty()) << text;
    }
}

TEST(AlertRules, MissingFileReportsError)
{
    AlertRulesLoad load =
        loadAlertRulesFile("/nonexistent/alert-rules.json");
    EXPECT_FALSE(load.ok());
}

TEST(AlertCompare, AllComparators)
{
    EXPECT_TRUE(alertCompare(AlertComparator::Gt, 2.0, 1.0));
    EXPECT_FALSE(alertCompare(AlertComparator::Gt, 1.0, 1.0));
    EXPECT_TRUE(alertCompare(AlertComparator::Ge, 1.0, 1.0));
    EXPECT_FALSE(alertCompare(AlertComparator::Ge, 0.9, 1.0));
    EXPECT_TRUE(alertCompare(AlertComparator::Lt, 0.5, 1.0));
    EXPECT_FALSE(alertCompare(AlertComparator::Lt, 1.0, 1.0));
    EXPECT_TRUE(alertCompare(AlertComparator::Le, 1.0, 1.0));
    EXPECT_FALSE(alertCompare(AlertComparator::Le, 1.1, 1.0));
}

TEST(AlertEngine, ThresholdFiresAndMapsExitCodes)
{
    MetricsRegistry registry;
    registry.gauge("pcap_fleet_outlier_hosts").set(12.0);

    AlertEngine engine(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "warns", "severity": "warn",
         "metric": {"name": "pcap_fleet_outlier_hosts",
                    "agg": "max"},
         "op": ">", "value": 8},
        {"name": "quiet", "severity": "critical",
         "metric": {"name": "pcap_fleet_outlier_hosts",
                    "agg": "max"},
         "op": ">", "value": 100},
        {"name": "absent", "severity": "critical",
         "metric": {"name": "pcap_no_such_metric"},
         "op": ">", "value": 0}
      ]
    })"));
    engine.finalize(registry);

    ASSERT_EQ(engine.outcomes().size(), 3u);
    EXPECT_EQ(engine.outcomes()[0].status, AlertStatus::Fired);
    EXPECT_TRUE(engine.outcomes()[0].hasValue);
    EXPECT_DOUBLE_EQ(engine.outcomes()[0].value, 12.0);
    EXPECT_EQ(engine.outcomes()[1].status, AlertStatus::Ok);
    EXPECT_EQ(engine.outcomes()[2].status, AlertStatus::Skipped);

    EXPECT_EQ(engine.firedCount(AlertSeverity::Warn), 1u);
    EXPECT_EQ(engine.firedCount(AlertSeverity::Critical), 0u);
    EXPECT_EQ(engine.exitCode(), 3);
}

TEST(AlertEngine, CriticalOutranksWarnInExitCode)
{
    MetricsRegistry registry;
    registry.counter("events_total").inc(10);

    AlertEngine engine(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "w", "severity": "warn",
         "metric": {"name": "events_total"},
         "op": ">", "value": 1},
        {"name": "c", "severity": "critical",
         "metric": {"name": "events_total"},
         "op": ">", "value": 5}
      ]
    })"));
    engine.finalize(registry);
    EXPECT_EQ(engine.exitCode(), 4);

    // Fired rules land in pcap_alerts_fired_total{rule,severity}.
    engine.recordMetrics(registry);
    EXPECT_EQ(registry
                  .counter("pcap_alerts_fired_total",
                           {{"rule", "c"},
                            {"severity", "critical"}})
                  .value(),
              1u);
}

TEST(AlertEngine, RatioAggregatesAlternationAndSkipsZeroDenominator)
{
    MetricsRegistry registry;
    registry
        .counter("pcap_sim_idle_periods_total",
                 {{"outcome", "miss_primary"}})
        .inc(30);
    registry
        .counter("pcap_sim_idle_periods_total",
                 {{"outcome", "miss_backup"}})
        .inc(10);
    registry
        .counter("pcap_sim_idle_periods_total", {{"outcome", "hit"}})
        .inc(1000);
    registry
        .counter("pcap_sim_shutdown_orders_total",
                 {{"status", "issued"}})
        .inc(80);

    AlertEngine engine(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "mispredict-rate", "severity": "warn",
         "ratio": {
           "numerator": {
             "name": "pcap_sim_idle_periods_total",
             "labels": {"outcome": "miss_primary|miss_backup"}},
           "denominator": {
             "name": "pcap_sim_shutdown_orders_total",
             "labels": {"status": "issued"}}},
         "op": ">", "value": 0.4},
        {"name": "zero-denominator", "severity": "critical",
         "ratio": {
           "numerator": {
             "name": "pcap_sim_idle_periods_total"},
           "denominator": {
             "name": "pcap_sim_shutdown_orders_total",
             "labels": {"status": "no_such_status"}}},
         "op": ">", "value": 0.0}
      ]
    })"));
    engine.finalize(registry);

    // (30 + 10) / 80 = 0.5 > 0.4: the alternation label matched
    // exactly the two miss outcomes, not the hit series.
    EXPECT_EQ(engine.outcomes()[0].status, AlertStatus::Fired);
    EXPECT_DOUBLE_EQ(engine.outcomes()[0].value, 0.5);

    // An empty denominator selection cannot produce a verdict.
    EXPECT_EQ(engine.outcomes()[1].status, AlertStatus::Skipped);
    EXPECT_EQ(engine.exitCode(), 3);
}

TEST(AlertEngine, ForSimSecondsGatesOnReplayedSpan)
{
    AlertEngine withoutSpan(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "gated", "severity": "critical",
         "metric": {"name": "events_total"},
         "op": ">", "value": 1, "for_sim_seconds": 3600}
      ]
    })"));
    {
        // Breach backed by only 60 simulated seconds: pending, and
        // a pending rule never contributes to the exit code.
        MetricsRegistry registry;
        registry.counter("events_total").inc(5);
        registry.counter("pcap_sim_input_span_us_total")
            .inc(60'000'000);
        withoutSpan.finalize(registry);
        EXPECT_EQ(withoutSpan.outcomes()[0].status,
                  AlertStatus::Pending);
        EXPECT_DOUBLE_EQ(
            withoutSpan.outcomes()[0].evidenceSimSeconds, 60.0);
        EXPECT_EQ(withoutSpan.exitCode(), 0);
    }

    AlertEngine withSpan(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "gated", "severity": "critical",
         "metric": {"name": "events_total"},
         "op": ">", "value": 1, "for_sim_seconds": 3600}
      ]
    })"));
    {
        // Both span counters count: 1h of input replay + 1h of
        // fleet replay comfortably clears the 1h floor.
        MetricsRegistry registry;
        registry.counter("events_total").inc(5);
        registry.counter("pcap_sim_input_span_us_total")
            .inc(3'000'000'000ull);
        registry.counter("pcap_fleet_sim_span_us_total")
            .inc(3'000'000'000ull);
        withSpan.finalize(registry);
        EXPECT_EQ(withSpan.outcomes()[0].status, AlertStatus::Fired);
        EXPECT_DOUBLE_EQ(withSpan.outcomes()[0].evidenceSimSeconds,
                         6000.0);
        EXPECT_EQ(withSpan.exitCode(), 4);
    }
}

TEST(AlertEngine, QuantileJudgesFleetSketchWithShardEvidence)
{
    AlertEngine engine(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "p50-miss", "severity": "warn",
         "quantile": {"distribution": "miss_fraction",
                      "q": 0.5, "policy": "PCAP"},
         "op": ">", "value": 0.2, "for_sim_seconds": 100},
        {"name": "other-policy", "severity": "warn",
         "quantile": {"distribution": "miss_fraction",
                      "q": 0.5, "policy": "TP"},
         "op": ">", "value": 0.2},
        {"name": "never-fed", "severity": "critical",
         "quantile": {"distribution": "saved_fraction", "q": 0.9},
         "op": "<", "value": 0.0}
      ]
    })"));

    LogSketch shard;
    for (int i = 0; i < 100; ++i)
        shard.add(0.5);
    // Two breaching shards, each worth 80 simulated seconds,
    // folded in shard order: evidence accumulates to 160 s.
    engine.addQuantileEvidence("miss_fraction", "PCAP", shard, 80.0);
    engine.addQuantileEvidence("miss_fraction", "PCAP", shard, 80.0);
    engine.setQuantileValue("miss_fraction", "PCAP", shard);

    // The TP distribution does not breach, so its shard spans are
    // irrelevant and the rule settles ok.
    LogSketch calm;
    for (int i = 0; i < 100; ++i)
        calm.add(0.1);
    engine.addQuantileEvidence("miss_fraction", "TP", calm, 80.0);
    engine.setQuantileValue("miss_fraction", "TP", calm);

    MetricsRegistry registry;
    engine.finalize(registry);

    EXPECT_EQ(engine.outcomes()[0].status, AlertStatus::Fired);
    EXPECT_NEAR(engine.outcomes()[0].value, 0.5, 0.5 * 0.011);
    EXPECT_DOUBLE_EQ(engine.outcomes()[0].evidenceSimSeconds,
                     160.0);
    EXPECT_EQ(engine.outcomes()[1].status, AlertStatus::Ok);
    // A quantile rule whose distribution was never fed is skipped,
    // not fired — absence of data is not a breach.
    EXPECT_EQ(engine.outcomes()[2].status, AlertStatus::Skipped);
    EXPECT_EQ(engine.exitCode(), 3);
}

TEST(AlertEngine, ToJsonEmitsAlertsV1Block)
{
    MetricsRegistry registry;
    registry.gauge("load").set(9.0);

    AlertEngine engine(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "hot", "severity": "critical",
         "metric": {"name": "load"}, "op": ">", "value": 5},
        {"name": "cold", "severity": "warn",
         "metric": {"name": "load"}, "op": "<", "value": 5}
      ]
    })"));
    engine.finalize(registry);

    Json doc = engine.toJson();
    EXPECT_EQ(doc.find("schema")->asString(), "pcap-alerts-v1");
    const Json *rules = doc.find("rules");
    ASSERT_NE(rules, nullptr);
    ASSERT_EQ(rules->size(), 2u);

    const Json &hot = rules->at(0);
    EXPECT_EQ(hot.find("name")->asString(), "hot");
    EXPECT_EQ(hot.find("severity")->asString(), "critical");
    EXPECT_EQ(hot.find("kind")->asString(), "threshold");
    EXPECT_EQ(hot.find("op")->asString(), ">");
    EXPECT_DOUBLE_EQ(hot.find("threshold")->asDouble(), 5.0);
    EXPECT_EQ(hot.find("status")->asString(), "fired");
    EXPECT_DOUBLE_EQ(hot.find("value")->asDouble(), 9.0);

    EXPECT_EQ(rules->at(1).find("status")->asString(), "ok");

    const Json *fired = doc.find("fired");
    ASSERT_NE(fired, nullptr);
    ASSERT_EQ(fired->size(), 1u);
    EXPECT_EQ(fired->at(0).find("rule")->asString(), "hot");
    EXPECT_DOUBLE_EQ(doc.find("warn_fired")->asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(doc.find("critical_fired")->asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(doc.find("exit_code")->asDouble(), 4.0);
}

TEST(AlertEngine, SummaryListsEveryRule)
{
    MetricsRegistry registry;
    registry.gauge("load").set(9.0);
    AlertEngine engine(mustParse(R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "hot", "severity": "critical",
         "metric": {"name": "load"}, "op": ">", "value": 5}
      ]
    })"));
    engine.finalize(registry);

    std::ostringstream os;
    engine.printSummary(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("hot"), std::string::npos);
    EXPECT_NE(text.find("fired"), std::string::npos);
    EXPECT_NE(text.find("critical"), std::string::npos);
}

} // namespace
} // namespace pcap::obs
