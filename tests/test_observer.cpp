/**
 * @file
 * Observer-layer tests: TeeObserver fan-out semantics (ordering and
 * exception propagation across 3+ children) and exhaustiveness of
 * the per-outcome instrumentation — every IdleOutcome value must be
 * handled by MetricsObserver and JsonlTraceObserver.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "sim/observer.hpp"

namespace pcap::sim {
namespace {

/** Appends "<id>:<callback>" to a shared log on every callback. */
class LoggingObserver final : public SimObserver
{
  public:
    LoggingObserver(std::string id, std::vector<std::string> &log)
        : id_(std::move(id)), log_(log)
    {
    }

    void onExecutionBegin(const ExecutionInput &input) override
    {
        (void)input;
        log_.push_back(id_ + ":begin");
    }

    void onExecutionEnd(const ExecutionInput &input,
                        const RunResult &result) override
    {
        (void)input;
        (void)result;
        log_.push_back(id_ + ":end");
    }

    void onIdlePeriod(const IdlePeriodRecord &record) override
    {
        (void)record;
        log_.push_back(id_ + ":idle");
    }

    void onShutdownLatched(TimeUs at,
                           pred::DecisionSource source) override
    {
        (void)at;
        (void)source;
        log_.push_back(id_ + ":latched");
    }

    void onShutdownIssued(TimeUs at) override
    {
        (void)at;
        log_.push_back(id_ + ":issued");
    }

  private:
    std::string id_;
    std::vector<std::string> &log_;
};

/** Throws from onIdlePeriod; every other callback logs normally. */
class ThrowingObserver final : public SimObserver
{
  public:
    explicit ThrowingObserver(std::vector<std::string> &log)
        : log_(log)
    {
    }

    void onIdlePeriod(const IdlePeriodRecord &record) override
    {
        (void)record;
        log_.push_back("thrower:idle");
        throw std::runtime_error("child failed");
    }

  private:
    std::vector<std::string> &log_;
};

TEST(TeeObserver, ForwardsToAllChildrenInOrder)
{
    std::vector<std::string> log;
    LoggingObserver a("a", log), b("b", log), c("c", log);
    TeeObserver tee({&a, &b, &c});

    ExecutionInput input;
    input.app = "t";
    RunResult result;
    IdlePeriodRecord record;

    tee.onExecutionBegin(input);
    tee.onShutdownLatched(5, pred::DecisionSource::Primary);
    tee.onShutdownIssued(5);
    tee.onIdlePeriod(record);
    tee.onExecutionEnd(input, result);

    const std::vector<std::string> expected = {
        "a:begin",   "b:begin",   "c:begin",   "a:latched",
        "b:latched", "c:latched", "a:issued",  "b:issued",
        "c:issued",  "a:idle",    "b:idle",    "c:idle",
        "a:end",     "b:end",     "c:end",
    };
    EXPECT_EQ(log, expected);
}

TEST(TeeObserver, ChildExceptionPropagatesAndStopsFanOut)
{
    std::vector<std::string> log;
    LoggingObserver first("first", log), last("last", log);
    ThrowingObserver thrower(log);
    TeeObserver tee({&first, &thrower, &last});

    IdlePeriodRecord record;
    EXPECT_THROW(tee.onIdlePeriod(record), std::runtime_error);
    // The first child ran, the thrower ran, the child after the
    // failing one was never reached.
    const std::vector<std::string> expected = {"first:idle",
                                               "thrower:idle"};
    EXPECT_EQ(log, expected);
}

TEST(TeeObserver, RejectsNullChild)
{
    std::vector<std::string> log;
    LoggingObserver a("a", log);
    EXPECT_DEATH(TeeObserver({&a, nullptr}), "null observer");
}

/** One record per IdleOutcome value, in declaration order. */
std::vector<IdlePeriodRecord>
oneRecordPerOutcome()
{
    std::vector<IdlePeriodRecord> records;
    for (std::size_t i = 0; i < 6; ++i) {
        IdlePeriodRecord record;
        record.pid = kMergedStreamPid;
        record.start = static_cast<TimeUs>(i) * 1000;
        record.end = record.start + 100;
        record.outcome = static_cast<IdleOutcome>(i);
        records.push_back(record);
    }
    return records;
}

TEST(MetricsObserver, HandlesEveryIdleOutcome)
{
    obs::MetricsRegistry registry;
    obs::ScopedMetrics scope(&registry, {{"test", "outcomes"}});
    MetricsObserver observer(scope, secondsUs(5.43),
                             /*trackDisk=*/false);

    ExecutionInput input;
    input.app = "t";
    observer.onExecutionBegin(input);
    for (const IdlePeriodRecord &record : oneRecordPerOutcome())
        observer.onIdlePeriod(record);
    observer.onExecutionEnd(input, RunResult{});

    // Every outcome value must land in its own labelled series with
    // exactly one count — a new enumerator without observer support
    // fails here.
    for (std::size_t i = 0; i < 6; ++i) {
        const char *name =
            idleOutcomeName(static_cast<IdleOutcome>(i));
        const obs::Counter &counter = registry.counter(
            "pcap_sim_idle_periods_total",
            {{"test", "outcomes"}, {"outcome", name}});
        EXPECT_EQ(counter.value(), 1u)
            << "outcome " << name << " not counted";
    }
}

TEST(JsonlTraceObserver, HandlesEveryIdleOutcome)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("pcap-test-observer-" + std::to_string(::getpid()) +
          ".jsonl"))
            .string();

    {
        JsonlTraceObserver observer(path);
        ExecutionInput input;
        input.app = "t";
        observer.onExecutionBegin(input);
        for (const IdlePeriodRecord &record : oneRecordPerOutcome())
            observer.onIdlePeriod(record);
        observer.onExecutionEnd(input, RunResult{});
        EXPECT_EQ(observer.recordCount(), 6u);
    }

    std::ifstream is(path);
    ASSERT_TRUE(is.is_open());
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();
    for (std::size_t i = 0; i < 6; ++i) {
        const std::string needle =
            std::string("\"outcome\":\"") +
            idleOutcomeName(static_cast<IdleOutcome>(i)) + "\"";
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing " << needle;
    }
    std::filesystem::remove(path);
}

} // namespace
} // namespace pcap::sim
