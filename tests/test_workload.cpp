/**
 * @file
 * Workload-model tests: every application generates structurally
 * valid, deterministic traces whose shape matches the behaviour the
 * paper describes (process counts, idle structure, I/O volumes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/app_model.hpp"
#include "workload/apps.hpp"

namespace pcap::workload {
namespace {

Rng
seedFor(const std::string &app, int execution)
{
    Rng base(1234 ^ hashString(app));
    return base.fork(static_cast<std::uint64_t>(execution));
}

TEST(Registry, KnowsAllSixApplications)
{
    const auto names = standardAppNames();
    ASSERT_EQ(names.size(), 6u);
    for (const std::string &name : names) {
        const auto model = makeApp(name);
        ASSERT_NE(model, nullptr) << name;
        EXPECT_EQ(model->info().name, name);
        EXPECT_GT(model->info().executions, 0);
    }
    EXPECT_EQ(makeApp("unknown-app"), nullptr);
}

TEST(Registry, ExecutionCountsMatchTable1)
{
    EXPECT_EQ(makeApp("mozilla")->info().executions, 49);
    EXPECT_EQ(makeApp("writer")->info().executions, 33);
    EXPECT_EQ(makeApp("impress")->info().executions, 19);
    EXPECT_EQ(makeApp("xemacs")->info().executions, 37);
    EXPECT_EQ(makeApp("nedit")->info().executions, 29);
    EXPECT_EQ(makeApp("mplayer")->info().executions, 31);
}

TEST(Registry, MakeStandardAppsBuildsAll)
{
    const auto apps = makeStandardApps();
    ASSERT_EQ(apps.size(), 6u);
    for (const auto &app : apps)
        EXPECT_NE(app, nullptr);
}

class EveryApp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryApp, GeneratesStructurallyValidTraces)
{
    const auto model = makeApp(GetParam());
    for (int execution = 0; execution < 3; ++execution) {
        const trace::Trace trace =
            model->generate(execution, seedFor(GetParam(),
                                               execution));
        EXPECT_EQ(trace.validate(), "")
            << GetParam() << " execution " << execution;
        EXPECT_EQ(trace.app(), GetParam());
        EXPECT_EQ(trace.execution(), execution);
        EXPECT_GT(trace.ioCount(), 0u);
    }
}

TEST_P(EveryApp, GenerationIsDeterministic)
{
    const auto model = makeApp(GetParam());
    const trace::Trace a = model->generate(0, seedFor(GetParam(), 0));
    const trace::Trace b = model->generate(0, seedFor(GetParam(), 0));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.events()[i], b.events()[i]);
}

TEST_P(EveryApp, DifferentSeedsGiveDifferentTraces)
{
    const auto model = makeApp(GetParam());
    const trace::Trace a = model->generate(0, Rng(1));
    const trace::Trace b = model->generate(0, Rng(2));
    const bool differs =
        a.size() != b.size() ||
        a.endTime() != b.endTime();
    EXPECT_TRUE(differs) << GetParam();
}

TEST_P(EveryApp, ExecutionsVaryWithinAnApplication)
{
    const auto model = makeApp(GetParam());
    const trace::Trace a = model->generate(0, seedFor(GetParam(), 0));
    const trace::Trace b = model->generate(1, seedFor(GetParam(), 1));
    EXPECT_NE(a.endTime(), b.endTime()) << GetParam();
}

TEST_P(EveryApp, PcsAreStableAcrossExecutions)
{
    // The property PCAP exploits: the set of call sites does not
    // change between executions of the same application.
    const auto model = makeApp(GetParam());
    auto pcs_of = [](const trace::Trace &trace) {
        std::set<Address> pcs;
        for (const auto &event : trace.events()) {
            if (trace::isIoEvent(event.type))
                pcs.insert(event.pc);
        }
        return pcs;
    };
    const auto a =
        pcs_of(model->generate(0, seedFor(GetParam(), 0)));
    const auto b =
        pcs_of(model->generate(5, seedFor(GetParam(), 5)));
    // Every call site of execution 5 already existed in execution 0
    // or vice versa: the union is no bigger than the larger set plus
    // a couple of optional activities.
    std::set<Address> both;
    both.insert(a.begin(), a.end());
    both.insert(b.begin(), b.end());
    EXPECT_LE(both.size(), a.size() + 3);
}

INSTANTIATE_TEST_SUITE_P(AllApps, EveryApp,
                         ::testing::Values("mozilla", "writer",
                                           "impress", "xemacs",
                                           "nedit", "mplayer"),
                         [](const auto &info) { return info.param; });

TEST(NeditShape, SingleProcessSingleIdlePeriod)
{
    // Table 1: nedit is the only single-process application and has
    // exactly one long idle period per execution.
    const auto model = makeApp("nedit");
    for (int execution = 0; execution < 5; ++execution) {
        const trace::Trace trace =
            model->generate(execution, seedFor("nedit", execution));
        EXPECT_EQ(trace.pids().size(), 1u);

        int long_gaps = 0;
        TimeUs prev = -1;
        for (const auto &event : trace.events()) {
            if (!trace::isIoEvent(event.type))
                continue;
            if (prev >= 0 && event.time - prev > secondsUs(5.43))
                ++long_gaps;
            prev = event.time;
        }
        EXPECT_EQ(long_gaps, 1) << "execution " << execution;
    }
}

TEST(MozillaShape, ThreeProcesses)
{
    const auto model = makeApp("mozilla");
    const trace::Trace trace =
        model->generate(0, seedFor("mozilla", 0));
    EXPECT_EQ(trace.pids().size(), 3u);
}

TEST(MplayerShape, TwoProcessesAndEndOfMovieDrain)
{
    const auto model = makeApp("mplayer");
    const trace::Trace trace =
        model->generate(0, seedFor("mplayer", 0));
    EXPECT_EQ(trace.pids().size(), 2u);

    // The drain: a >= 30 s silence right before the final config
    // write and exit.
    TimeUs prev = -1;
    TimeUs largest_tail_gap = 0;
    for (const auto &event : trace.events()) {
        if (!trace::isIoEvent(event.type))
            continue;
        if (prev >= 0)
            largest_tail_gap =
                std::max(largest_tail_gap, event.time - prev);
        prev = event.time;
    }
    EXPECT_GE(largest_tail_gap, secondsUs(30.0));
}

TEST(MplayerShape, StreamingVolumeDominates)
{
    // mplayer is by far the most I/O-heavy application in Table 1.
    const auto mplayer = makeApp("mplayer")->generate(
        0, seedFor("mplayer", 0));
    const auto nedit =
        makeApp("nedit")->generate(0, seedFor("nedit", 0));
    EXPECT_GT(mplayer.ioCount(), 20 * nedit.ioCount());
}

TEST(WriterShape, TwoProcessesWithHelper)
{
    const auto model = makeApp("writer");
    const trace::Trace trace =
        model->generate(0, seedFor("writer", 0));
    EXPECT_EQ(trace.pids().size(), 2u);
}

TEST(XemacsShape, MostlySingleProcess)
{
    // Table 1: xemacs' local idle count barely exceeds its global
    // one — the compile helper appears only in some executions.
    const auto model = makeApp("xemacs");
    int multi = 0;
    for (int execution = 0; execution < 10; ++execution) {
        const trace::Trace trace =
            model->generate(execution, seedFor("xemacs", execution));
        multi += trace.pids().size() > 1;
    }
    EXPECT_GT(multi, 0);
    EXPECT_LT(multi, 8);
}

} // namespace
} // namespace pcap::workload
