/**
 * @file
 * Tests of the predictor framework and the baselines: decision
 * semantics, the timeout predictor and the Learning Tree.
 */

#include <gtest/gtest.h>

#include <memory>

#include "pred/learning_tree.hpp"
#include "pred/predictor.hpp"
#include "pred/timeout.hpp"

namespace pcap::pred {
namespace {

IoContext
io(TimeUs time, TimeUs since_prev)
{
    IoContext ctx;
    ctx.time = time;
    ctx.sincePrev = since_prev;
    ctx.pc = 0x1000;
    ctx.fd = 3;
    return ctx;
}

TEST(DecisionSource, Names)
{
    EXPECT_STREQ(decisionSourceName(DecisionSource::None), "none");
    EXPECT_STREQ(decisionSourceName(DecisionSource::Primary),
                 "primary");
    EXPECT_STREQ(decisionSourceName(DecisionSource::Backup),
                 "backup");
}

TEST(InitialConsent, ConsentsFromProcessStart)
{
    const ShutdownDecision decision = initialConsent(secondsUs(5));
    EXPECT_EQ(decision.earliest, secondsUs(5));
    EXPECT_EQ(decision.source, DecisionSource::None);
}

TEST(TimeoutPredictor, SchedulesTimerAfterEveryIo)
{
    TimeoutPredictor tp(secondsUs(10));
    const ShutdownDecision d1 = tp.onIo(io(secondsUs(1), -1));
    EXPECT_EQ(d1.earliest, secondsUs(11));
    EXPECT_EQ(d1.source, DecisionSource::Primary);

    const ShutdownDecision d2 = tp.onIo(io(secondsUs(4), 3));
    EXPECT_EQ(d2.earliest, secondsUs(14));
    EXPECT_EQ(tp.decision(), d2);
}

TEST(TimeoutPredictor, ResetRestoresInitialConsent)
{
    TimeoutPredictor tp(secondsUs(10), secondsUs(2));
    tp.onIo(io(secondsUs(5), -1));
    tp.resetExecution();
    EXPECT_EQ(tp.decision(), initialConsent(secondsUs(2)));
}

TEST(TimeoutPredictor, NameAndTimeout)
{
    TimeoutPredictor tp(secondsUs(7));
    EXPECT_STREQ(tp.name(), "TP");
    EXPECT_EQ(tp.timeout(), secondsUs(7));
}

TEST(TimeoutPredictorDeath, NonPositiveTimeoutIsFatal)
{
    EXPECT_DEATH(TimeoutPredictor(0), "positive");
}

// ---- Learning Tree -------------------------------------------------

LtConfig
ltConfig()
{
    LtConfig config;
    config.historyLength = 4;
    config.minTrainings = 2;
    return config;
}

TEST(LtTree, UntrainedPredictsNothing)
{
    LtTree tree(ltConfig());
    EXPECT_FALSE(tree.predict(0b1010, 4).has_value());
    EXPECT_EQ(tree.size(), 0u);
}

TEST(LtTree, LearnsLongAfterPattern)
{
    LtTree tree(ltConfig());
    // History 0b01 (short then long... bit0 = most recent) is
    // followed by a long period, twice.
    tree.train(0b01, 2, true);
    tree.train(0b01, 2, true);
    const auto prediction = tree.predict(0b01, 2);
    ASSERT_TRUE(prediction.has_value());
    EXPECT_TRUE(*prediction);
}

TEST(LtTree, LearnsShortAfterPattern)
{
    LtTree tree(ltConfig());
    tree.train(0b11, 2, false);
    tree.train(0b11, 2, false);
    const auto prediction = tree.predict(0b11, 2);
    ASSERT_TRUE(prediction.has_value());
    EXPECT_FALSE(*prediction);
}

TEST(LtTree, MinTrainingsGatesPrediction)
{
    LtTree tree(ltConfig());
    tree.train(0b01, 2, true);
    EXPECT_FALSE(tree.predict(0b01, 2).has_value());
}

TEST(LtTree, LongestTrainedSuffixWins)
{
    LtTree tree(ltConfig());
    // Two length-2 contexts sharing their most-recent bit but with
    // opposite outcomes: only the longer context can tell them
    // apart (the shared length-1 suffix node sees both outcomes and
    // stays unsure).
    for (int i = 0; i < 3; ++i)
        tree.train(0b11, 2, true);
    for (int i = 0; i < 3; ++i)
        tree.train(0b01, 2, false);

    const auto long_ctx = tree.predict(0b11, 2);
    ASSERT_TRUE(long_ctx.has_value());
    EXPECT_TRUE(*long_ctx);

    const auto short_ctx = tree.predict(0b01, 2);
    ASSERT_TRUE(short_ctx.has_value());
    EXPECT_FALSE(*short_ctx);

    // A context with an untrained long suffix AND an untrained
    // length-1 suffix yields no prediction at all.
    EXPECT_FALSE(tree.predict(0b10, 2).has_value());
}

TEST(LtTree, CounterAdaptsToChangedBehaviour)
{
    LtTree tree(ltConfig());
    for (int i = 0; i < 4; ++i)
        tree.train(0b1, 1, true);
    ASSERT_TRUE(*tree.predict(0b1, 1));
    // Behaviour flips: enough short observations flip the counter.
    for (int i = 0; i < 4; ++i)
        tree.train(0b1, 1, false);
    EXPECT_FALSE(*tree.predict(0b1, 1));
}

TEST(LtTree, ClearForgets)
{
    LtTree tree(ltConfig());
    tree.train(0b1, 1, true);
    tree.train(0b1, 1, true);
    tree.clear();
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_FALSE(tree.predict(0b1, 1).has_value());
}

TEST(LtTree, SizeCountsSuffixNodes)
{
    LtTree tree(ltConfig());
    tree.train(0b0110, 4, true);
    // One node per suffix length 1..4.
    EXPECT_EQ(tree.size(), 4u);
}

TEST(LtPredictor, SubWaitWindowGapsAreFiltered)
{
    const LtConfig config = ltConfig();
    auto tree = std::make_shared<LtTree>(config);
    LtPredictor predictor(config, tree);

    predictor.onIo(io(secondsUs(1), -1));
    predictor.onIo(io(secondsUs(1) + millisUs(200), millisUs(200)));
    EXPECT_EQ(predictor.historyLength(), 0);
    EXPECT_EQ(tree->size(), 0u);
}

TEST(LtPredictor, RecordsIdleClassesInHistory)
{
    const LtConfig config = ltConfig();
    auto tree = std::make_shared<LtTree>(config);
    LtPredictor predictor(config, tree);

    predictor.onIo(io(secondsUs(0), -1));
    predictor.onIo(io(secondsUs(2), secondsUs(2)));   // medium -> 0
    predictor.onIo(io(secondsUs(12), secondsUs(10))); // long -> 1
    EXPECT_EQ(predictor.historyLength(), 2);
    EXPECT_EQ(predictor.historyBits() & 0b11u, 0b01u);
}

TEST(LtPredictor, BacksUpToTimeoutWhileTraining)
{
    const LtConfig config = ltConfig();
    auto tree = std::make_shared<LtTree>(config);
    LtPredictor predictor(config, tree);

    const ShutdownDecision decision =
        predictor.onIo(io(secondsUs(1), -1));
    EXPECT_EQ(decision.source, DecisionSource::Backup);
    EXPECT_EQ(decision.earliest, secondsUs(1) + config.timeout);
}

TEST(LtPredictor, PredictsPrimaryOnceTrained)
{
    const LtConfig config = ltConfig();
    auto tree = std::make_shared<LtTree>(config);
    LtPredictor predictor(config, tree);

    // Two periods of "long idle after a long idle".
    predictor.onIo(io(secondsUs(0), -1));
    predictor.onIo(io(secondsUs(10), secondsUs(10)));
    predictor.onIo(io(secondsUs(20), secondsUs(10)));
    const ShutdownDecision decision =
        predictor.onIo(io(secondsUs(30), secondsUs(10)));
    EXPECT_EQ(decision.source, DecisionSource::Primary);
    EXPECT_EQ(decision.earliest, secondsUs(30) + config.waitWindow);
}

TEST(LtPredictor, DisabledBackupYieldsNever)
{
    LtConfig config = ltConfig();
    config.backupEnabled = false;
    auto tree = std::make_shared<LtTree>(config);
    LtPredictor predictor(config, tree);
    const ShutdownDecision decision =
        predictor.onIo(io(secondsUs(1), -1));
    EXPECT_EQ(decision.earliest, kTimeNever);
    EXPECT_EQ(decision.source, DecisionSource::None);
}

TEST(LtPredictor, ResetClearsHistoryButKeepsTree)
{
    const LtConfig config = ltConfig();
    auto tree = std::make_shared<LtTree>(config);
    LtPredictor predictor(config, tree);

    predictor.onIo(io(secondsUs(0), -1));
    predictor.onIo(io(secondsUs(10), secondsUs(10)));
    predictor.onIo(io(secondsUs(20), secondsUs(10)));
    const std::size_t trained = tree->size();
    EXPECT_GT(trained, 0u);

    predictor.resetExecution();
    EXPECT_EQ(predictor.historyLength(), 0);
    EXPECT_EQ(tree->size(), trained); // table reuse
}

TEST(LtPredictorDeath, NullTreeIsFatal)
{
    EXPECT_DEATH(LtPredictor(ltConfig(), nullptr), "null");
}

TEST(LtTreeDeath, BadHistoryLengthIsFatal)
{
    LtConfig config;
    config.historyLength = 0;
    EXPECT_DEATH(LtTree tree(config), "history length");
    config.historyLength = 17;
    EXPECT_DEATH(LtTree tree(config), "history length");
}

} // namespace
} // namespace pcap::pred
