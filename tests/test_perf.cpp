/**
 * @file
 * Hardware-counter self-profiling (obs/perf) and peak-RSS
 * introspection (util/resource).
 *
 * CI containers rarely grant perf_event_open, so the suite pins the
 * *contract* rather than the counters: the software fallback must be
 * forced cleanly via PCAP_PERF_BACKEND=software, report the same
 * JSON shape as the hardware backend, account real thread CPU time
 * in task-clock, and never fake hardware counts. Hardware-only
 * assertions run only where the probe says counters exist.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "util/json.hpp"
#include "util/resource.hpp"

namespace pcap::obs {
namespace {

/** Scoped PCAP_PERF_BACKEND override, restored on destruction. */
class BackendEnv
{
  public:
    explicit BackendEnv(const char *value)
    {
        const char *old = std::getenv("PCAP_PERF_BACKEND");
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        setenv("PCAP_PERF_BACKEND", value, 1);
    }

    ~BackendEnv()
    {
        if (had_)
            setenv("PCAP_PERF_BACKEND", saved_.c_str(), 1);
        else
            unsetenv("PCAP_PERF_BACKEND");
    }

  private:
    std::string saved_;
    bool had_ = false;
};

/** Scoped profiler installation (mirrors bench_all's setup). */
class ScopedProfiler
{
  public:
    explicit ScopedProfiler(PerfProfiler &profiler)
    {
        setPerfProfiler(&profiler);
    }

    ~ScopedProfiler() { setPerfProfiler(nullptr); }
};

/** Burn thread CPU time until the thread clock visibly advances. */
void
spinUntilCpuTimeAdvances()
{
    std::uint64_t acc = 0;
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50; ++i) {
        for (std::uint64_t k = 0; k < 2'000'000; ++k)
            acc += k * k;
        sink = acc;
    }
    (void)sink;
}

TEST(Resource, PeakRssNonZeroOnLinux)
{
#if defined(__linux__)
    EXPECT_GT(peakRssBytes(), 0u);
#else
    GTEST_SKIP() << "peak RSS only guaranteed on Linux";
#endif
}

TEST(Resource, PeakRssMonotoneAcrossAllocation)
{
    const std::uint64_t before = peakRssBytes();
    // Touch ~16 MiB so the high-water mark has something to move
    // past; the mark may already be higher (other tests ran), so
    // the assertion is monotonicity, not growth.
    std::vector<char> block(16u << 20);
    for (std::size_t i = 0; i < block.size(); i += 4096)
        block[i] = static_cast<char>(i);
    const std::uint64_t after = peakRssBytes();
    EXPECT_GE(after, before);
#if defined(__linux__)
    EXPECT_GT(after, 0u);
#endif
}

TEST(PerfCounts, RatiosAreZeroSafe)
{
    const PerfCounts zero;
    EXPECT_EQ(zero.ipc(), 0.0);
    EXPECT_EQ(zero.cacheMissRate(), 0.0);
    EXPECT_EQ(zero.branchMissRate(), 0.0);

    PerfCounts counts;
    counts.cycles = 100;
    counts.instructions = 250;
    counts.cacheReferences = 40;
    counts.cacheMisses = 10;
    counts.branchMisses = 5;
    EXPECT_DOUBLE_EQ(counts.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(counts.cacheMissRate(), 0.25);
    EXPECT_DOUBLE_EQ(counts.branchMissRate(), 0.02);
}

TEST(PerfCounts, SinceSaturatesAndPropagatesMultiplexing)
{
    PerfCounts end;
    end.cycles = 50;
    end.taskClockNs = 100;
    PerfCounts start;
    start.cycles = 80; // scaling jitter: start "ahead" of end
    start.multiplexed = true;
    const PerfCounts delta = end.since(start);
    EXPECT_EQ(delta.cycles, 0u) << "negative deltas must clamp";
    EXPECT_EQ(delta.taskClockNs, 100u);
    EXPECT_TRUE(delta.multiplexed);
}

TEST(PerfCounts, AddAccumulates)
{
    PerfCounts total;
    PerfCounts part;
    part.cycles = 7;
    part.instructions = 11;
    part.multiplexed = true;
    total.add(part);
    total.add(part);
    EXPECT_EQ(total.cycles, 14u);
    EXPECT_EQ(total.instructions, 22u);
    EXPECT_TRUE(total.multiplexed);
}

TEST(PerfRegion, NoOpWithoutProfiler)
{
    ASSERT_EQ(perfProfiler(), nullptr);
    ASSERT_FALSE(perfEnabled());
    PerfCounts into;
    {
        PerfRegion named("test:region");
        PerfRegion pointed(&into);
    }
    EXPECT_EQ(into.taskClockNs, 0u);
}

TEST(PerfProfiler, ForcedSoftwareBackendIsHonest)
{
    BackendEnv env("software");
    PerfProfiler profiler;
    EXPECT_EQ(profiler.backend(), PerfBackend::Software);
    EXPECT_NE(profiler.backendDetail().find("PCAP_PERF_BACKEND"),
              std::string::npos)
        << profiler.backendDetail();

    ScopedProfiler installed(profiler);
    {
        PerfRegion region("test:spin");
        spinUntilCpuTimeAdvances();
    }

    const auto regions = profiler.regions();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].first, "test:spin");
    const PerfCounts &counts = regions[0].second;
    // The software backend reports real thread CPU time and never
    // fakes hardware counters.
    EXPECT_GT(counts.taskClockNs, 0u);
    EXPECT_GT(counts.timeEnabledNs, 0u);
    EXPECT_EQ(counts.cycles, 0u);
    EXPECT_EQ(counts.instructions, 0u);
    EXPECT_EQ(counts.cacheMisses, 0u);
}

TEST(PerfProfiler, RegionsAccumulateAndSort)
{
    BackendEnv env("software");
    PerfProfiler profiler;
    ScopedProfiler installed(profiler);

    PerfCounts into;
    {
        PerfRegion b("test:b");
        PerfRegion a("test:a");
        PerfRegion both("test:a", &into);
        spinUntilCpuTimeAdvances();
    }
    {
        PerfRegion a(std::string("test:a")); // dynamic-name ctor
        spinUntilCpuTimeAdvances();
    }

    const auto regions = profiler.regions();
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].first, "test:a");
    EXPECT_EQ(regions[1].first, "test:b");
    EXPECT_GT(regions[0].second.taskClockNs, 0u);
    EXPECT_GT(into.taskClockNs, 0u);
}

TEST(PerfProfiler, SuccessiveProfilersNeverReuseStaleGroups)
{
    BackendEnv env("software");
    // Stack-local profilers land at the same address run after run,
    // so the per-thread group slot must key on a generation id, not
    // the profiler's address — an address-keyed slot would hand
    // every profiler after the first a freed group (use-after-free
    // under ASan).
    for (int i = 0; i < 3; ++i) {
        PerfProfiler profiler;
        ScopedProfiler installed(profiler);
        {
            PerfRegion region("test:generation");
            spinUntilCpuTimeAdvances();
        }
        const auto regions = profiler.regions();
        ASSERT_EQ(regions.size(), 1u);
        EXPECT_GT(regions[0].second.taskClockNs, 0u);
    }
}

TEST(PerfProfiler, WorkerThreadsGetTheirOwnGroups)
{
    BackendEnv env("software");
    PerfProfiler profiler;
    ScopedProfiler installed(profiler);

    std::thread worker([] {
        PerfRegion region("test:worker");
        spinUntilCpuTimeAdvances();
    });
    worker.join();
    {
        PerfRegion region("test:main");
        spinUntilCpuTimeAdvances();
    }

    const auto regions = profiler.regions();
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].first, "test:main");
    EXPECT_EQ(regions[1].first, "test:worker");
    EXPECT_GT(regions[1].second.taskClockNs, 0u)
        << "worker-thread CPU time must land in its own region";
}

/** Key set of one serialized counts object, in emission order. */
std::vector<std::string>
jsonKeys(const Json &obj)
{
    return obj.keys();
}

TEST(PerfJson, SoftwareAndHardwareShareOneShape)
{
    // Shape identity is by construction (one serializer), but pin
    // it anyway: a backend-conditional field would break consumers
    // exactly on the hosts where nobody looks.
    const std::vector<std::string> expected = {
        "cycles",          "instructions",
        "cache_references", "cache_misses",
        "branch_misses",   "task_clock_ns",
        "time_enabled_ns", "time_running_ns",
        "multiplexed",     "ipc",
        "cache_miss_rate", "branch_miss_rate",
    };
    EXPECT_EQ(jsonKeys(perfCountsJson(PerfCounts{})), expected);

    BackendEnv env("software");
    PerfProfiler software;
    ScopedProfiler installed(software);
    {
        PerfRegion region("test:shape");
        spinUntilCpuTimeAdvances();
    }
    const Json block = perfToJson(software);
    EXPECT_EQ(block.find("schema")->asString(), "pcap-perf-v1");
    EXPECT_EQ(block.find("backend")->asString(), "software");
    const Json &regions = *block.find("regions");
    ASSERT_EQ(regions.size(), 1u);
    std::vector<std::string> withName = {"region"};
    withName.insert(withName.end(), expected.begin(),
                    expected.end());
    EXPECT_EQ(jsonKeys(regions.at(0)), withName);
}

TEST(PerfJson, HardwareBackendWhereAvailable)
{
    const PerfCapability cap = PerfCounterGroup::probe();
    if (!cap.hardware)
        GTEST_SKIP() << "no perf_event_open here: " << cap.detail;

    PerfProfiler profiler;
    ASSERT_EQ(profiler.backend(), PerfBackend::Hardware);
    ScopedProfiler installed(profiler);
    {
        PerfRegion region("test:hw");
        spinUntilCpuTimeAdvances();
    }
    const auto regions = profiler.regions();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_GT(regions[0].second.cycles, 0u);
    EXPECT_GT(regions[0].second.instructions, 0u);
    // Same JSON shape as the software backend (the identity the
    // fallback contract promises).
    const Json block = perfToJson(profiler);
    EXPECT_EQ(block.find("backend")->asString(), "hardware");
    ASSERT_EQ(block.find("regions")->size(), 1u);
    EXPECT_EQ(jsonKeys(block.find("regions")->at(0)).size(), 13u);
}

TEST(PerfMetrics, RecordsOneSeriesSetPerRegion)
{
    BackendEnv env("software");
    PerfProfiler profiler;
    ScopedProfiler installed(profiler);
    {
        PerfRegion region("test:metrics");
        spinUntilCpuTimeAdvances();
    }

    MetricsRegistry registry;
    recordPerfMetrics(profiler, registry);
    const Labels labels = {{"region", "test:metrics"}};
    EXPECT_EQ(
        registry.counter("pcap_perf_cycles_total", labels).value(),
        0u);
    EXPECT_GT(
        registry.gauge("pcap_perf_task_clock_seconds", labels)
            .value(),
        0.0);
    EXPECT_DOUBLE_EQ(
        registry.gauge("pcap_perf_time_running_ratio", labels)
            .value(),
        1.0)
        << "software backend never multiplexes";
}

TEST(Manifest, BuildInfoIdentifiesThisBinary)
{
    const BuildInfo info = collectBuildInfo();
    EXPECT_TRUE(info.compiler == "gcc" ||
                info.compiler == "clang" ||
                info.compiler == "unknown");
    EXPECT_FALSE(info.compilerVersion.empty());
    EXPECT_FALSE(info.cxxStandard.empty());
}

TEST(Manifest, BuildAndPerfLandInJson)
{
    RunManifest manifest;
    manifest.build = collectBuildInfo();
    manifest.perfBackend = "software";
    manifest.perfDetail = "forced for the test";
    manifest.perfRequested = true;

    std::ostringstream os;
    manifest.toJson().dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"build\""), std::string::npos);
    EXPECT_NE(text.find("\"compiler\""), std::string::npos);
    EXPECT_NE(text.find("\"perf\""), std::string::npos);
    EXPECT_NE(text.find("\"software\""), std::string::npos);
}

} // namespace
} // namespace pcap::obs
