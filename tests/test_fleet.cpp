/**
 * @file
 * The streaming fleet path and its parity contract.
 *
 *  - Host profiles: deterministic in (fleet seed, host index) alone,
 *    bounded by their FleetConfig ranges.
 *  - Streaming parity: a pure single-app host streams inputs
 *    byte-identical to the materialized generateTraces path, and a
 *    1-host fleet cell is RunResult-field-equal to the Evaluation
 *    engine — the tentpole's "same numbers, bounded memory" promise.
 *  - Fleet determinism: a 64-host fleet is field-equal across thread
 *    counts.
 *  - TraceStore retention: scopes evict published entries, account
 *    resident bytes, and later requests regenerate.
 *  - CellStore: engines sharing a store replay each cell once.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/metrics.hpp"
#include "sim/cell_store.hpp"
#include "sim/execution_source.hpp"
#include "sim/experiment.hpp"
#include "sim/fleet.hpp"
#include "sim/trace_store.hpp"
#include "util/json.hpp"
#include "workload/host_profile.hpp"

namespace pcap::sim {
namespace {

void
expectSameAccuracy(const AccuracyStats &a, const AccuracyStats &b)
{
    EXPECT_EQ(a.opportunities, b.opportunities);
    EXPECT_EQ(a.hitPrimary, b.hitPrimary);
    EXPECT_EQ(a.hitBackup, b.hitBackup);
    EXPECT_EQ(a.missPrimary, b.missPrimary);
    EXPECT_EQ(a.missBackup, b.missBackup);
    EXPECT_EQ(a.notPredicted, b.notPredicted);
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    expectSameAccuracy(a.accuracy, b.accuracy);
    for (auto category :
         {power::EnergyCategory::BusyIo,
          power::EnergyCategory::IdleShort,
          power::EnergyCategory::IdleLong,
          power::EnergyCategory::PowerCycle}) {
        EXPECT_DOUBLE_EQ(a.energy.get(category),
                         b.energy.get(category));
    }
    EXPECT_EQ(a.shutdowns, b.shutdowns);
    EXPECT_EQ(a.spinUps, b.spinUps);
    EXPECT_EQ(a.ignoredShutdowns, b.ignoredShutdowns);
    EXPECT_EQ(a.totalSpinUpDelay, b.totalSpinUpDelay);
}

TEST(HostProfile, DeterministicAndIndependentOfFleetSize)
{
    workload::FleetConfig small;
    small.fleetSeed = 1234;
    small.hosts = 4;
    workload::FleetConfig large = small;
    large.hosts = 4096;

    for (std::uint64_t host = 0; host < 4; ++host) {
        const auto a = workload::hostProfile(small, host);
        const auto b = workload::hostProfile(large, host);
        EXPECT_EQ(a.host, host);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_DOUBLE_EQ(a.thinkTimeScale, b.thinkTimeScale);
        EXPECT_EQ(a.executions, b.executions);
        ASSERT_EQ(a.appMix.size(), b.appMix.size());
        for (std::size_t i = 0; i < a.appMix.size(); ++i) {
            EXPECT_EQ(a.appMix[i].app, b.appMix[i].app);
            EXPECT_DOUBLE_EQ(a.appMix[i].weight,
                             b.appMix[i].weight);
        }
    }
}

TEST(HostProfile, DrawsStayInsideConfiguredBounds)
{
    workload::FleetConfig config;
    config.fleetSeed = 99;
    config.hosts = 64;
    config.maxAppsPerHost = 3;
    config.executionsMin = 4;
    config.executionsMax = 12;
    config.minThinkScale = 0.5;
    config.maxThinkScale = 2.0;

    for (std::uint64_t host = 0; host < config.hosts; ++host) {
        const auto profile = workload::hostProfile(config, host);
        EXPECT_GE(profile.thinkTimeScale, 0.5);
        EXPECT_LT(profile.thinkTimeScale, 2.0);
        EXPECT_GE(profile.executions, 4);
        EXPECT_LE(profile.executions, 12);
        ASSERT_FALSE(profile.appMix.empty());
        EXPECT_LE(profile.appMix.size(), 3u);
        std::set<std::string> distinct;
        for (const auto &share : profile.appMix) {
            EXPECT_GE(share.weight, 0.5);
            EXPECT_LT(share.weight, 2.0);
            distinct.insert(share.app);
        }
        EXPECT_EQ(distinct.size(), profile.appMix.size());
    }
}

TEST(HostProfile, ExecutionPlanIndicesIncreasePerApp)
{
    workload::FleetConfig config;
    config.fleetSeed = 7;
    config.hosts = 8;
    for (std::uint64_t host = 0; host < config.hosts; ++host) {
        const auto profile = workload::hostProfile(config, host);
        std::map<std::string, int> nextIndex;
        for (const auto &planned :
             workload::executionPlan(profile)) {
            EXPECT_EQ(planned.appExecution,
                      nextIndex[planned.app]++);
        }
    }
}

TEST(ScaleTraceTimes, ScalesEveryEventAndStaysValid)
{
    Rng rng(11);
    const auto model = workload::makeApp("mozilla");
    ASSERT_TRUE(model);
    const auto trace = model->generate(0, rng);
    ASSERT_FALSE(trace.events().empty());

    const auto scaled = workload::scaleTraceTimes(trace, 2.0);
    ASSERT_EQ(scaled.events().size(), trace.events().size());
    EXPECT_EQ(scaled.validate(), "");
    for (std::size_t i = 0; i < trace.events().size(); ++i) {
        EXPECT_EQ(scaled.events()[i].time,
                  static_cast<TimeUs>(std::llround(
                      static_cast<double>(trace.events()[i].time) *
                      2.0)));
    }

    // scale == 1.0 is the exact identity, not a round trip.
    const auto same = workload::scaleTraceTimes(trace, 1.0);
    ASSERT_EQ(same.events().size(), trace.events().size());
    for (std::size_t i = 0; i < trace.events().size(); ++i)
        EXPECT_EQ(same.events()[i].time, trace.events()[i].time);
}

TEST(HostExecutionSource, SingleAppStreamMatchesMaterializedPath)
{
    const std::uint64_t seed = 42;
    const std::string app = "mozilla";
    const int executions = 2;
    const cache::CacheParams cacheParams;

    obs::ScopedMetrics silent(nullptr, {});
    const auto traces =
        generateTraces(seed, app, executions, /*jobs=*/1, silent);
    const auto expected =
        inputsFromTraces(traces, cacheParams, /*jobs=*/1);

    workload::HostProfile profile;
    profile.seed = seed;
    profile.appMix = {{app, 1.0}};
    profile.executions = 0; // full-run parity mode
    profile.maxExecutionsPerApp = executions;

    HostExecutionSource source(profile, cacheParams);
    EXPECT_EQ(source.planned(), expected.size());
    std::size_t i = 0;
    while (const ExecutionInput *input = source.next()) {
        ASSERT_LT(i, expected.size());
        EXPECT_TRUE(input->sameContentAs(expected[i]));
        ++i;
    }
    EXPECT_EQ(i, expected.size());
    EXPECT_EQ(source.produced(), expected.size());
}

TEST(FleetParity, OneHostCellEqualsEvaluationEngine)
{
    ExperimentConfig config;
    config.maxExecutions = 2;

    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::pcapFdHistory(),
    };

    Evaluation reference(config);
    FleetDriver driver({}, config.sim, config.cache);

    for (const std::string &app : reference.appNames()) {
        workload::HostProfile profile;
        profile.seed = config.seed;
        profile.appMix = {{app, 1.0}};
        profile.executions = 0;
        profile.maxExecutionsPerApp = config.maxExecutions;

        const HostCellResult cell =
            driver.runHost(profile, policies);
        EXPECT_EQ(cell.executions,
                  reference.inputs(app).size());

        expectSameResult(cell.base, reference.baseRun(app));
        ASSERT_EQ(cell.policyRuns.size(), policies.size());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto expected =
                reference.globalRun(app, policies[p]);
            expectSameResult(cell.policyRuns[p], expected.run);
            EXPECT_EQ(cell.tableEntries[p],
                      expected.tableEntries);
        }
    }
}

TEST(FleetDriver, DeterministicAcrossThreadCounts)
{
    workload::FleetConfig fleet;
    fleet.fleetSeed = 7;
    fleet.hosts = 64;
    fleet.executionsMin = 1;
    fleet.executionsMax = 2;
    fleet.minThinkScale = 0.5;
    fleet.maxThinkScale = 2.0;
    fleet.maxExecutionsPerApp = 0;

    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::pcapFdHistory(),
    };
    ExperimentConfig config;

    FleetOptions serialOptions;
    serialOptions.jobs = 1;
    serialOptions.keepHostResults = true;
    FleetOptions parallelOptions = serialOptions;
    parallelOptions.jobs = 4;

    const FleetReport serial =
        FleetDriver(fleet, config.sim, config.cache, serialOptions)
            .run(policies);
    const FleetReport parallel =
        FleetDriver(fleet, config.sim, config.cache,
                    parallelOptions)
            .run(policies);

    EXPECT_EQ(serial.hosts, fleet.hosts);
    EXPECT_EQ(serial.executions, parallel.executions);
    EXPECT_EQ(serial.accesses, parallel.accesses);
    EXPECT_EQ(serial.opportunities, parallel.opportunities);
    EXPECT_DOUBLE_EQ(serial.meanBaseEnergyJ,
                     parallel.meanBaseEnergyJ);
    EXPECT_DOUBLE_EQ(serial.baseEnergyJ.p50,
                     parallel.baseEnergyJ.p50);
    EXPECT_DOUBLE_EQ(serial.baseEnergyJ.p99,
                     parallel.baseEnergyJ.p99);

    ASSERT_EQ(serial.policies.size(), parallel.policies.size());
    for (std::size_t p = 0; p < serial.policies.size(); ++p) {
        const auto &a = serial.policies[p];
        const auto &b = parallel.policies[p];
        EXPECT_EQ(a.policy, b.policy);
        EXPECT_DOUBLE_EQ(a.energyJ.p50, b.energyJ.p50);
        EXPECT_DOUBLE_EQ(a.energyJ.p90, b.energyJ.p90);
        EXPECT_DOUBLE_EQ(a.energyJ.p99, b.energyJ.p99);
        EXPECT_DOUBLE_EQ(a.savedFraction.p50,
                         b.savedFraction.p50);
        EXPECT_DOUBLE_EQ(a.hitFraction.p90, b.hitFraction.p90);
        EXPECT_DOUBLE_EQ(a.missFraction.p99, b.missFraction.p99);
        EXPECT_DOUBLE_EQ(a.meanEnergyJ, b.meanEnergyJ);
        EXPECT_DOUBLE_EQ(a.meanSavedFraction,
                         b.meanSavedFraction);
        EXPECT_EQ(a.shutdowns, b.shutdowns);
        EXPECT_EQ(a.spinUps, b.spinUps);

        EXPECT_DOUBLE_EQ(a.medianSavedFraction,
                         b.medianSavedFraction);
        EXPECT_DOUBLE_EQ(a.madSavedFraction, b.madSavedFraction);
        EXPECT_DOUBLE_EQ(a.medianMissFraction,
                         b.medianMissFraction);
        EXPECT_DOUBLE_EQ(a.madMissFraction, b.madMissFraction);
        ASSERT_EQ(a.outliers.size(), b.outliers.size());
        for (std::size_t o = 0; o < a.outliers.size(); ++o) {
            EXPECT_EQ(a.outliers[o].host, b.outliers[o].host);
            EXPECT_EQ(a.outliers[o].metric, b.outliers[o].metric);
            EXPECT_DOUBLE_EQ(a.outliers[o].value,
                             b.outliers[o].value);
            EXPECT_DOUBLE_EQ(a.outliers[o].score,
                             b.outliers[o].score);
        }
    }

    ASSERT_EQ(serial.hostResults.size(),
              parallel.hostResults.size());
    for (std::size_t i = 0; i < serial.hostResults.size(); ++i) {
        const auto &a = serial.hostResults[i];
        const auto &b = parallel.hostResults[i];
        EXPECT_EQ(a.host, b.host);
        EXPECT_EQ(a.executions, b.executions);
        EXPECT_EQ(a.accesses, b.accesses);
        EXPECT_DOUBLE_EQ(a.thinkTimeScale, b.thinkTimeScale);
        expectSameResult(a.base, b.base);
        ASSERT_EQ(a.policyRuns.size(), b.policyRuns.size());
        for (std::size_t p = 0; p < a.policyRuns.size(); ++p) {
            expectSameResult(a.policyRuns[p], b.policyRuns[p]);
            EXPECT_EQ(a.tableEntries[p], b.tableEntries[p]);
        }
    }
}

TEST(FleetPercentiles, NearestRankIsExact)
{
    std::vector<double> values;
    for (int i = 100; i >= 1; --i)
        values.push_back(static_cast<double>(i));
    const auto p = percentilesOf(values);
    EXPECT_DOUBLE_EQ(p.p50, 50.0);
    EXPECT_DOUBLE_EQ(p.p90, 90.0);
    EXPECT_DOUBLE_EQ(p.p99, 99.0);

    const auto single = percentilesOf(std::vector<double>{3.5});
    EXPECT_DOUBLE_EQ(single.p50, 3.5);
    EXPECT_DOUBLE_EQ(single.p99, 3.5);

    const auto empty = percentilesOf(std::vector<double>{});
    EXPECT_DOUBLE_EQ(empty.p50, 0.0);
    EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

TEST(FleetSketch, PercentilesMatchNearestRankWithinAccuracy)
{
    // Re-derive every per-host value the streaming path sketches
    // from the retained host cells, and require the sketch-read
    // percentiles to sit within the sketch's relative accuracy of
    // the exact nearest-rank answer.
    workload::FleetConfig fleet;
    fleet.fleetSeed = 21;
    fleet.hosts = 64;
    fleet.executionsMin = 1;
    fleet.executionsMax = 2;
    fleet.maxExecutionsPerApp = 0;

    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::pcapFdHistory(),
    };
    ExperimentConfig config;
    FleetOptions options;
    options.jobs = 2;
    options.keepHostResults = true;

    const FleetReport report =
        FleetDriver(fleet, config.sim, config.cache, options)
            .run(policies);
    ASSERT_EQ(report.hostResults.size(), fleet.hosts);

    const double accuracy = obs::LogSketch().relativeAccuracy();
    auto expectClose = [&](const FleetPercentiles &sketched,
                           std::vector<double> values) {
        const FleetPercentiles exact = percentilesOf(values);
        for (auto pick : {&FleetPercentiles::p50,
                          &FleetPercentiles::p90,
                          &FleetPercentiles::p99}) {
            const double want = exact.*pick;
            EXPECT_NEAR(sketched.*pick, want,
                        accuracy * std::abs(want) + 1e-12);
        }
    };

    std::vector<double> baseValues;
    for (const auto &cell : report.hostResults)
        baseValues.push_back(cell.base.energy.total());
    expectClose(report.baseEnergyJ, baseValues);

    ASSERT_EQ(report.policies.size(), policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
        std::vector<double> energy, saved, miss;
        for (const auto &cell : report.hostResults) {
            const double baseJ = cell.base.energy.total();
            const double j = cell.policyRuns[p].energy.total();
            energy.push_back(j);
            saved.push_back(baseJ > 0.0 ? 1.0 - j / baseJ : 0.0);
            miss.push_back(
                cell.policyRuns[p].accuracy.missFraction());
        }
        expectClose(report.policies[p].energyJ, energy);
        expectClose(report.policies[p].savedFraction, saved);
        expectClose(report.policies[p].missFraction, miss);
    }
}

TEST(FleetOutliers, FlagsByMadScoreAndOrdersDeterministically)
{
    // Median 1.0, MAD 0.1: 2.0 scores 10, 0.5 scores 5, 1.2
    // scores 2 (below the cut).
    const std::vector<FleetHostValue> candidates = {
        {7, 1.2}, {3, 2.0}, {5, 0.5}, {3, 1.9}};
    const auto flagged =
        flagOutliers("saved_fraction", candidates, 1.0, 0.1, 3.5);
    ASSERT_EQ(flagged.size(), 2u);
    EXPECT_EQ(flagged[0].host, 3u);
    EXPECT_DOUBLE_EQ(flagged[0].value, 2.0);
    EXPECT_NEAR(flagged[0].score, 10.0, 1e-9);
    EXPECT_EQ(flagged[0].metric, "saved_fraction");
    EXPECT_EQ(flagged[1].host, 5u);
    EXPECT_NEAR(flagged[1].score, 5.0, 1e-9);

    // A zero MAD (constant distribution) must not divide by zero;
    // any deviation is then effectively infinite-score.
    const auto degenerate = flagOutliers(
        "miss_fraction", {{1, 0.2}, {2, 0.0}}, 0.0, 0.0, 3.5);
    ASSERT_EQ(degenerate.size(), 1u);
    EXPECT_EQ(degenerate[0].host, 1u);
    EXPECT_GT(degenerate[0].score, 1e6);

    EXPECT_TRUE(
        flagOutliers("m", {}, 0.0, 0.0, 3.5).empty());
}

TEST(TraceStore, RetentionScopeEvictsAndAccountsBytes)
{
    obs::MetricsRegistry registry;
    obs::Gauge &gauge = registry.gauge("pcap_trace_store_bytes");
    obs::ScopedMetrics silent(nullptr, {});

    TraceStore store;
    store.bindBytesGauge(&gauge);
    EXPECT_EQ(store.bytesResident(), 0u);

    {
        TraceStore::Retention retention(store);
        const auto traces =
            store.traces(42, "mozilla", 2, /*jobs=*/1, silent);
        ASSERT_TRUE(traces);
        EXPECT_EQ(store.generatedSets(), 1u);
        EXPECT_GT(store.bytesResident(), 0u);
        EXPECT_DOUBLE_EQ(gauge.value(),
                         static_cast<double>(
                             store.bytesResident()));

        // A second request inside the scope is a lookup.
        const auto again =
            store.traces(42, "mozilla", 2, /*jobs=*/1, silent);
        EXPECT_EQ(again.get(), traces.get());
        EXPECT_EQ(store.generatedSets(), 1u);
    }

    // Scope closed: entry evicted, bytes back to zero.
    EXPECT_EQ(store.evictedSets(), 1u);
    EXPECT_EQ(store.bytesResident(), 0u);
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);

    // A later request regenerates, deterministically.
    const auto regenerated =
        store.traces(42, "mozilla", 2, /*jobs=*/1, silent);
    ASSERT_TRUE(regenerated);
    EXPECT_EQ(store.generatedSets(), 2u);
}

TEST(TraceStore, NestedRetentionsEvictOnlyAtLastClose)
{
    obs::ScopedMetrics silent(nullptr, {});
    TraceStore store;
    TraceStore::Retention outer(store);
    {
        TraceStore::Retention inner(store);
        store.traces(42, "mozilla", 1, /*jobs=*/1, silent);
    }
    EXPECT_EQ(store.evictedSets(), 0u);
    EXPECT_GT(store.bytesResident(), 0u);
}

TEST(CellStore, EnginesWithEqualConfigShareCells)
{
    ExperimentConfig config;
    config.maxExecutions = 2;
    const auto store = std::make_shared<CellStore>();

    ParallelOptions options;
    options.cellStore = store;

    ParallelEvaluation first(config, options);
    ParallelEvaluation second(config, options);

    const auto policy = PolicyConfig::timeoutPolicy();
    const auto computedOnce = first.globalRun("mozilla", policy);
    EXPECT_EQ(store->computed(), 1u);
    EXPECT_EQ(store->hits(), 0u);

    const auto reused = second.globalRun("mozilla", policy);
    EXPECT_EQ(store->computed(), 1u);
    EXPECT_EQ(store->hits(), 1u);
    expectSameResult(reused.run, computedOnce.run);
    EXPECT_EQ(reused.tableEntries, computedOnce.tableEntries);

    // A different policy is a different cell.
    second.globalRun("mozilla", PolicyConfig::pcapBase());
    EXPECT_EQ(store->computed(), 2u);
}

TEST(CellStore, DistinctConfigsNeverCollide)
{
    ExperimentConfig fast;
    fast.maxExecutions = 1;
    ExperimentConfig slow;
    slow.maxExecutions = 2;
    const auto store = std::make_shared<CellStore>();

    ParallelOptions options;
    options.cellStore = store;
    ParallelEvaluation a(fast, options);
    ParallelEvaluation b(slow, options);

    const auto policy = PolicyConfig::timeoutPolicy();
    a.globalRun("mozilla", policy);
    b.globalRun("mozilla", policy);
    EXPECT_EQ(store->computed(), 2u);
    EXPECT_EQ(store->hits(), 0u);
}

// -- Drill-down + alert determinism ---------------------------------

/** A scratch drill-down directory, removed on destruction. */
struct TempDrillDir
{
    explicit TempDrillDir(const char *suffix)
    {
        path = (std::filesystem::temp_directory_path() /
                ("pcap-test-drill-" + std::to_string(::getpid()) +
                 "-" + suffix))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~TempDrillDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string path;
};

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

workload::FleetConfig
drillFleetConfig()
{
    workload::FleetConfig fleet;
    fleet.fleetSeed = 7;
    fleet.hosts = 32;
    fleet.executionsMin = 1;
    fleet.executionsMax = 2;
    fleet.minThinkScale = 0.5;
    fleet.maxThinkScale = 2.0;
    fleet.maxExecutionsPerApp = 0;
    return fleet;
}

constexpr const char *kDrillExtensions[] = {
    ".jsonl", ".prov.bin", ".prov.jsonl", ".timeline.json",
    ".timeline.csv"};

TEST(FleetDrilldown, ReRunMatchesPassOneAndStandaloneDrill)
{
    const workload::FleetConfig fleet = drillFleetConfig();
    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::pcapFdHistory(),
    };
    ExperimentConfig config;
    TempDrillDir fleetDir("pass2");
    TempDrillDir standaloneDir("solo");

    FleetOptions options;
    options.jobs = 2;
    options.keepHostResults = true;
    // Low MAD cut so a 32-host fleet reliably flags outliers.
    options.outlierMadThreshold = 0.5;
    options.drilldownDir = fleetDir.path;

    FleetDriver driver(fleet, config.sim, config.cache, options);
    const FleetReport report = driver.run(policies);

    ASSERT_FALSE(report.drilldowns.empty());
    ASSERT_EQ(report.hostResults.size(), fleet.hosts);

    for (const HostDrilldown &drill : report.drilldowns) {
        ASSERT_LT(drill.host, report.hostResults.size());
        const HostCellResult &cell = report.hostResults[drill.host];
        EXPECT_EQ(cell.host, drill.host);

        // Pass 2 re-simulated exactly what pass 1 measured.
        EXPECT_EQ(drill.executions, cell.executions);
        EXPECT_EQ(drill.accesses, cell.accesses);
        EXPECT_EQ(drill.simSpanUs, cell.simSpanUs);
        EXPECT_DOUBLE_EQ(drill.thinkTimeScale, cell.thinkTimeScale);

        ASSERT_EQ(drill.policies.size(), policies.size());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const DrilldownPolicy &drilled = drill.policies[p];
            EXPECT_EQ(drilled.policy, policies[p].label);
            EXPECT_EQ(drilled.shutdowns,
                      cell.policyRuns[p].shutdowns);
            EXPECT_EQ(drilled.spinUps,
                      cell.policyRuns[p].spinUps);
            EXPECT_EQ(drilled.tableEntries, cell.tableEntries[p]);
        }

        // At least one pass-1 outlier flag explains the selection.
        EXPECT_FALSE(drill.reasons.empty());
    }

    // A standalone re-drill of the first flagged host produces a
    // byte-identical artifact bundle: the drill-down is a pure
    // function of (fleet config, host index, policies).
    const HostDrilldown &first = report.drilldowns.front();
    const HostDrilldown solo = driver.drillHost(
        workload::hostProfile(fleet, first.host), policies,
        standaloneDir.path);

    EXPECT_EQ(solo.host, first.host);
    ASSERT_EQ(solo.policies.size(), first.policies.size());
    for (std::size_t p = 0; p < first.policies.size(); ++p) {
        EXPECT_EQ(solo.policies[p].stem, first.policies[p].stem);
        for (const char *ext : kDrillExtensions) {
            const std::string name = first.policies[p].stem + ext;
            EXPECT_EQ(
                readFileBytes(fleetDir.path + "/" + name),
                readFileBytes(standaloneDir.path + "/" + name))
                << name;
        }
    }
}

TEST(FleetDrilldown, BundlesIdenticalAcrossThreadCounts)
{
    const workload::FleetConfig fleet = drillFleetConfig();
    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::pcapFdHistory(),
    };
    ExperimentConfig config;
    TempDrillDir serialDir("j1");
    TempDrillDir parallelDir("j4");

    FleetOptions serialOptions;
    serialOptions.jobs = 1;
    serialOptions.outlierMadThreshold = 0.5;
    serialOptions.drilldownDir = serialDir.path;
    FleetOptions parallelOptions = serialOptions;
    parallelOptions.jobs = 4;
    parallelOptions.drilldownDir = parallelDir.path;

    const FleetReport serial =
        FleetDriver(fleet, config.sim, config.cache, serialOptions)
            .run(policies);
    const FleetReport parallel =
        FleetDriver(fleet, config.sim, config.cache,
                    parallelOptions)
            .run(policies);

    ASSERT_FALSE(serial.drilldowns.empty());
    ASSERT_EQ(serial.drilldowns.size(), parallel.drilldowns.size());
    for (std::size_t i = 0; i < serial.drilldowns.size(); ++i) {
        const HostDrilldown &a = serial.drilldowns[i];
        const HostDrilldown &b = parallel.drilldowns[i];
        EXPECT_EQ(a.host, b.host);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_DOUBLE_EQ(a.baseEnergyJ, b.baseEnergyJ);
        ASSERT_EQ(a.reasons.size(), b.reasons.size());
        for (std::size_t r = 0; r < a.reasons.size(); ++r) {
            EXPECT_EQ(a.reasons[r].policy, b.reasons[r].policy);
            EXPECT_EQ(a.reasons[r].metric, b.reasons[r].metric);
            EXPECT_DOUBLE_EQ(a.reasons[r].score,
                             b.reasons[r].score);
        }
        ASSERT_EQ(a.policies.size(), b.policies.size());
        for (std::size_t p = 0; p < a.policies.size(); ++p) {
            EXPECT_EQ(a.policies[p].stem, b.policies[p].stem);
            EXPECT_DOUBLE_EQ(a.policies[p].energyJ,
                             b.policies[p].energyJ);
            for (const char *ext : kDrillExtensions) {
                const std::string name = a.policies[p].stem + ext;
                EXPECT_EQ(
                    readFileBytes(serialDir.path + "/" + name),
                    readFileBytes(parallelDir.path + "/" + name))
                    << name;
            }
        }
    }
}

TEST(FleetAlerts, VerdictsDeterministicAcrossThreadCounts)
{
    const char *rulesText = R"({
      "schema": "pcap-alert-rules-v1",
      "rules": [
        {"name": "p50-miss-nonnegative", "severity": "warn",
         "quantile": {"distribution": "miss_fraction", "q": 0.5,
                      "policy": "PCAPfh"},
         "op": ">=", "value": 0.0, "for_sim_seconds": 1},
        {"name": "p90-saved", "severity": "warn",
         "quantile": {"distribution": "saved_fraction", "q": 0.9},
         "op": "<", "value": -1.0},
        {"name": "outlier-hosts", "severity": "critical",
         "metric": {"name": "pcap_fleet_outlier_hosts",
                    "agg": "max"},
         "op": ">", "value": 1000}
      ]
    })";
    const workload::FleetConfig fleet = drillFleetConfig();
    const std::vector<PolicyConfig> policies = {
        PolicyConfig::timeoutPolicy(),
        PolicyConfig::pcapFdHistory(),
    };
    ExperimentConfig config;

    auto evaluate = [&](unsigned jobs) {
        obs::AlertRulesLoad load =
            obs::parseAlertRules(rulesText);
        EXPECT_TRUE(load.ok()) << load.error;
        obs::AlertEngine engine(std::move(load.rules));
        obs::MetricsRegistry registry;

        FleetOptions options;
        options.jobs = jobs;
        options.metrics = &registry;
        options.alerts = &engine;
        FleetDriver(fleet, config.sim, config.cache, options)
            .run(policies);

        engine.finalize(registry);
        std::ostringstream dump;
        engine.toJson().dump(dump);
        return std::make_pair(engine.exitCode(), dump.str());
    };

    const auto serial = evaluate(1);
    const auto parallel = evaluate(4);

    // The breaching quantile rule settled with real evidence...
    EXPECT_EQ(serial.first, 3);
    // ...and the verdict block is bit-identical across thread
    // counts: sketches feed the engine in shard order on one thread.
    EXPECT_EQ(serial.second, parallel.second);
}

} // namespace
} // namespace pcap::sim
