/**
 * @file
 * Simulator tests: execution-input construction, the idle-period
 * taxonomy, local and global runs on hand-built inputs, and the
 * base/ideal energy bounds.
 */

#include <gtest/gtest.h>

#include "sim/input.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace pcap::sim {
namespace {

constexpr Pid kPidA = 100;
constexpr Pid kPidB = 101;

/** Input with a fully scripted access stream (no cache involved). */
ExecutionInput
scriptedInput(std::vector<trace::DiskAccess> accesses, TimeUs end)
{
    ExecutionInput input;
    input.app = "scripted";
    input.accesses = std::move(accesses);
    input.processes.push_back({kPidA, 0, end});
    input.processes.push_back({kFlushDaemonPid, 0, end});
    input.endTime = end;
    return input;
}

trace::DiskAccess
access(TimeUs time, Pid pid = kPidA, Address pc = 0x1000, Fd fd = 3)
{
    trace::DiskAccess a;
    a.time = time;
    a.pid = pid;
    a.pc = pc;
    a.fd = fd;
    a.blocks = 1;
    return a;
}

TEST(ExecutionInput, FromTraceExtractsSpansAndFlushDaemon)
{
    trace::TraceBuilder builder("app", 2, kPidA);
    builder.io(secondsUs(1), kPidA, trace::EventType::Read, 0x1000,
               3, 5, 0, 4096);
    builder.fork(secondsUs(2), kPidA, kPidB);
    builder.io(secondsUs(3), kPidB, trace::EventType::Read, 0x2000,
               4, 6, 0, 4096);
    builder.exit(secondsUs(4), kPidB);
    const trace::Trace trace = builder.finish(secondsUs(10));

    const ExecutionInput input =
        ExecutionInput::fromTrace(trace, cache::CacheParams{});
    EXPECT_EQ(input.app, "app");
    EXPECT_EQ(input.execution, 2);
    EXPECT_EQ(input.endTime, secondsUs(10));
    EXPECT_EQ(input.tracedIos, 2u);
    ASSERT_EQ(input.processes.size(), 3u); // A, B, flush daemon

    const ProcessSpan &daemon = input.spanOf(kFlushDaemonPid);
    EXPECT_EQ(daemon.start, 0);
    EXPECT_EQ(daemon.end, secondsUs(10));
    EXPECT_EQ(input.spanOf(kPidB).end, secondsUs(4));
    EXPECT_FALSE(input.accesses.empty());
}

TEST(ExecutionInput, OpportunityCountsIncludeTrailingGap)
{
    // Accesses at 0 and 10 s, end at 30 s: two global opportunities
    // (the 10 s gap and the 20 s trailing gap).
    ExecutionInput input = scriptedInput(
        {access(0), access(secondsUs(10))}, secondsUs(30));
    EXPECT_EQ(input.countGlobalOpportunities(secondsUs(5.43)), 2u);
    EXPECT_EQ(input.countLocalOpportunities(secondsUs(5.43)), 2u);
}

TEST(ExecutionInput, LocalCountsSumPerProcess)
{
    // Interleaved accesses: globally no gap exceeds 6 s, but each
    // process has a 12 s private gap.
    ExecutionInput input = scriptedInput(
        {access(0, kPidA), access(secondsUs(6), kPidB),
         access(secondsUs(12), kPidA), access(secondsUs(18), kPidB)},
        secondsUs(19));
    input.processes.clear();
    input.processes.push_back({kPidA, 0, secondsUs(19)});
    input.processes.push_back({kPidB, 0, secondsUs(19)});
    EXPECT_EQ(input.countGlobalOpportunities(secondsUs(10)), 0u);
    EXPECT_EQ(input.countLocalOpportunities(secondsUs(10)), 2u);
}

TEST(RunLocal, TimeoutTaxonomyOnScriptedGaps)
{
    // Gaps after the accesses: 20 s (TP hit: off = 10 s), 12 s (TP
    // miss: off = 2 s < breakeven), 8 s (not predicted: timer never
    // expires... 8 < 10), 3 s (nothing: not an opportunity, no
    // shutdown because the timer does not expire), trailing 30 s
    // (hit).
    std::vector<trace::DiskAccess> accesses = {
        access(0),
        access(secondsUs(20)),
        access(secondsUs(32)),
        access(secondsUs(40)),
        access(secondsUs(43)),
    };
    ExecutionInput input =
        scriptedInput(std::move(accesses), secondsUs(73));

    PolicySession session(PolicyConfig::timeoutPolicy());
    SimParams params;
    const AccuracyStats stats =
        runLocal({input}, session, params);

    EXPECT_EQ(stats.opportunities, 4u);
    EXPECT_EQ(stats.hits(), 2u);
    EXPECT_EQ(stats.misses(), 1u);
    EXPECT_EQ(stats.notPredicted, 1u);
    EXPECT_EQ(stats.hitPrimary, 2u);
}

TEST(RunLocal, FlushDaemonPredictsLikeAnyProcess)
{
    std::vector<trace::DiskAccess> accesses = {
        access(0, kFlushDaemonPid, kFlushDaemonPc),
        access(secondsUs(40), kFlushDaemonPid, kFlushDaemonPc),
    };
    ExecutionInput input =
        scriptedInput(std::move(accesses), secondsUs(50));
    PolicySession session(PolicyConfig::timeoutPolicy());
    SimParams params;
    const AccuracyStats stats = runLocal({input}, session, params);
    // 40 s gap (hit) and the 10 s trailing gap, where the 10 s
    // timer expires exactly at the end and never fires.
    EXPECT_EQ(stats.opportunities, 2u);
    EXPECT_EQ(stats.hits(), 1u);
    EXPECT_EQ(stats.notPredicted, 1u);
}

TEST(RunGlobal, AccuracyAndEnergyFromOneRun)
{
    std::vector<trace::DiskAccess> accesses = {
        access(0),
        access(secondsUs(30)),
        access(secondsUs(60)),
    };
    ExecutionInput input =
        scriptedInput(std::move(accesses), secondsUs(90));

    PolicySession session(PolicyConfig::timeoutPolicy());
    SimParams params;
    const RunResult result = runGlobal({input}, session, params);

    EXPECT_EQ(result.accuracy.opportunities, 3u);
    EXPECT_EQ(result.accuracy.hits(), 3u); // 30 s gaps, 10 s timer
    EXPECT_EQ(result.shutdowns, 3u);
    EXPECT_EQ(result.spinUps, 2u); // trailing shutdown never wakes
    EXPECT_GT(result.energy.total(), 0.0);
    EXPECT_GT(result.energy.get(power::EnergyCategory::PowerCycle),
              0.0);
}

TEST(RunGlobal, ProcessExitReleasesItsConstraint)
{
    // Process B accesses at 1 s and would block a shutdown until
    // 11 s; it exits at 3 s, so the disk can spin down once process
    // A's own timer (10 s from t=2) expires at 12 s... but with B
    // gone the latest constraint is A's. Scripted so the gap ends at
    // 30 s: the shutdown lands and off-time exceeds breakeven.
    ExecutionInput input;
    input.app = "exit-test";
    input.accesses = {access(secondsUs(1), kPidB),
                      access(secondsUs(2), kPidA),
                      access(secondsUs(30), kPidA)};
    input.processes.push_back({kPidA, 0, secondsUs(40)});
    input.processes.push_back({kPidB, 0, secondsUs(3)});
    input.endTime = secondsUs(40);

    PolicySession session(PolicyConfig::timeoutPolicy());
    SimParams params;
    const RunResult result = runGlobal({input}, session, params);
    // Gap 2..30 s: shutdown at 12 s, off 18 s -> hit. Trailing gap
    // 30..40 s: shutdown at 40... no: timer expires at 40 exactly,
    // not strictly before the end, so it is not predicted.
    EXPECT_EQ(result.accuracy.hits(), 1u);
    EXPECT_EQ(result.shutdowns, 1u);
}

TEST(RunBase, NeverShutsDown)
{
    std::vector<trace::DiskAccess> accesses = {
        access(0), access(secondsUs(100))};
    ExecutionInput input =
        scriptedInput(std::move(accesses), secondsUs(120));
    SimParams params;
    const RunResult result = runBase({input}, params);
    EXPECT_EQ(result.shutdowns, 0u);
    EXPECT_EQ(result.accuracy.notPredicted,
              result.accuracy.opportunities);
    EXPECT_DOUBLE_EQ(
        result.energy.get(power::EnergyCategory::PowerCycle), 0.0);
}

TEST(RunIdeal, ShutsDownExactlyTheOpportunities)
{
    std::vector<trace::DiskAccess> accesses = {
        access(0),
        access(secondsUs(3)),   // 3 s gap: left alone
        access(secondsUs(30)),  // 27 s gap: shutdown
    };
    ExecutionInput input =
        scriptedInput(std::move(accesses), secondsUs(60));
    SimParams params;
    const RunResult result = runIdeal({input}, params);
    EXPECT_EQ(result.accuracy.opportunities, 2u);
    EXPECT_EQ(result.accuracy.hits(), 2u);
    EXPECT_EQ(result.accuracy.misses(), 0u);
    EXPECT_EQ(result.shutdowns, 2u);
}

TEST(RunIdeal, NeverWorseThanBaseOrTimeout)
{
    std::vector<trace::DiskAccess> accesses;
    for (int i = 0; i < 20; ++i)
        accesses.push_back(access(secondsUs(i * 17)));
    ExecutionInput input =
        scriptedInput(std::move(accesses), secondsUs(360));
    SimParams params;

    const double ideal =
        runIdeal({input}, params).energy.total();
    const double base = runBase({input}, params).energy.total();
    PolicySession session(PolicyConfig::timeoutPolicy());
    const double tp =
        runGlobal({input}, session, params).energy.total();

    EXPECT_LE(ideal, base);
    EXPECT_LE(ideal, tp);
    EXPECT_LE(tp, base);
}

TEST(RunResult, MergeAccumulates)
{
    RunResult a, b;
    a.shutdowns = 2;
    a.accuracy.opportunities = 3;
    a.energy.add(power::EnergyCategory::BusyIo, 1.0);
    b.shutdowns = 1;
    b.accuracy.opportunities = 4;
    b.energy.add(power::EnergyCategory::BusyIo, 2.0);
    a.merge(b);
    EXPECT_EQ(a.shutdowns, 3u);
    EXPECT_EQ(a.accuracy.opportunities, 7u);
    EXPECT_DOUBLE_EQ(a.energy.total(), 3.0);
}

TEST(AccuracyStats, FractionsNormalizeToOpportunities)
{
    AccuracyStats stats;
    stats.opportunities = 10;
    stats.hitPrimary = 6;
    stats.hitBackup = 2;
    stats.missPrimary = 3;
    stats.notPredicted = 2;
    EXPECT_DOUBLE_EQ(stats.hitFraction(), 0.8);
    EXPECT_DOUBLE_EQ(stats.missFraction(), 0.3);
    EXPECT_DOUBLE_EQ(stats.notPredictedFraction(), 0.2);
    EXPECT_DOUBLE_EQ(stats.hitPrimaryFraction(), 0.6);
}

TEST(AccuracyStats, EmptyStatsYieldZeroFractions)
{
    const AccuracyStats stats;
    EXPECT_DOUBLE_EQ(stats.hitFraction(), 0.0);
    EXPECT_DOUBLE_EQ(stats.missFraction(), 0.0);
}

TEST(PolicyConfig, FactoryLabels)
{
    EXPECT_EQ(PolicyConfig::timeoutPolicy().label, "TP");
    EXPECT_EQ(PolicyConfig::learningTree().label, "LT");
    EXPECT_EQ(PolicyConfig::learningTreeNoReuse().label, "LTa");
    EXPECT_EQ(PolicyConfig::pcapBase().label, "PCAP");
    EXPECT_EQ(PolicyConfig::pcapHistory().label, "PCAPh");
    EXPECT_EQ(PolicyConfig::pcapFd().label, "PCAPf");
    EXPECT_EQ(PolicyConfig::pcapFdHistory().label, "PCAPfh");
    EXPECT_EQ(PolicyConfig::pcapNoReuse().label, "PCAPa");
    EXPECT_FALSE(PolicyConfig::pcapNoReuse().reuseTables);
    EXPECT_FALSE(PolicyConfig::learningTreeNoReuse().reuseTables);
}

TEST(PolicySession, ReuseKeepsTablesAcrossExecutions)
{
    PolicySession session(PolicyConfig::pcapBase());
    auto predictor = session.makeLocal(1, 0);
    pred::IoContext ctx;
    ctx.time = secondsUs(1);
    ctx.sincePrev = -1;
    ctx.pc = 0x1000;
    predictor->onIo(ctx);
    ctx.time = secondsUs(31);
    ctx.sincePrev = secondsUs(30);
    predictor->onIo(ctx);
    EXPECT_EQ(session.tableEntries(), 1u);

    session.beginExecution();
    EXPECT_EQ(session.tableEntries(), 1u); // reuse keeps it
}

TEST(PolicySession, NoReuseDiscardsTables)
{
    PolicySession session(PolicyConfig::pcapNoReuse());
    auto predictor = session.makeLocal(1, 0);
    pred::IoContext ctx;
    ctx.time = secondsUs(1);
    ctx.sincePrev = -1;
    ctx.pc = 0x1000;
    predictor->onIo(ctx);
    ctx.time = secondsUs(31);
    ctx.sincePrev = secondsUs(30);
    predictor->onIo(ctx);
    EXPECT_EQ(session.tableEntries(), 1u);

    session.beginExecution();
    EXPECT_EQ(session.tableEntries(), 0u);
}

TEST(PolicySession, TimeoutHasNoLearnedState)
{
    PolicySession session(PolicyConfig::timeoutPolicy());
    EXPECT_EQ(session.tableEntries(), 0u);
    EXPECT_EQ(session.table(), nullptr);
}

} // namespace
} // namespace pcap::sim
