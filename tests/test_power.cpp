/**
 * @file
 * Tests of the disk power model: Table 2 parameters, breakeven
 * derivation, the energy ledger, and the online power-managed disk
 * state machine with exact energy arithmetic.
 */

#include <gtest/gtest.h>

#include "power/disk.hpp"
#include "power/disk_params.hpp"
#include "power/energy.hpp"

namespace pcap::power {
namespace {

TEST(DiskParams, DefaultsMatchTable2)
{
    const DiskParams disk = fujitsuMhf2043at();
    EXPECT_DOUBLE_EQ(disk.busyPowerW, 2.2);
    EXPECT_DOUBLE_EQ(disk.idlePowerW, 0.95);
    EXPECT_DOUBLE_EQ(disk.standbyPowerW, 0.13);
    EXPECT_DOUBLE_EQ(disk.spinUpEnergyJ, 4.4);
    EXPECT_DOUBLE_EQ(disk.shutdownEnergyJ, 0.36);
    EXPECT_EQ(disk.spinUpTime, secondsUs(1.6));
    EXPECT_EQ(disk.shutdownTime, secondsUs(0.67));
    EXPECT_EQ(disk.breakevenTime, secondsUs(5.43));
}

TEST(DiskParams, DerivedBreakevenMatchesQuoted)
{
    // The paper quotes 5.43 s; deriving it from the other Table 2
    // numbers must agree to within rounding.
    const DiskParams disk = fujitsuMhf2043at();
    EXPECT_NEAR(disk.derivedBreakevenSeconds(), 5.43, 0.1);
    EXPECT_EQ(disk.validate(), "");
}

TEST(DiskParams, ValidateCatchesInconsistencies)
{
    DiskParams disk = fujitsuMhf2043at();
    disk.standbyPowerW = 1.2; // above idle power
    EXPECT_NE(disk.validate(), "");

    disk = fujitsuMhf2043at();
    disk.breakevenTime = secondsUs(60.0); // contradicts energies
    EXPECT_NE(disk.validate(), "");

    disk = fujitsuMhf2043at();
    disk.spinUpTime = 0;
    EXPECT_NE(disk.validate(), "");
}

TEST(EnergyLedger, AccumulatesPerCategory)
{
    EnergyLedger ledger;
    ledger.add(EnergyCategory::BusyIo, 1.0);
    ledger.add(EnergyCategory::BusyIo, 2.0);
    ledger.add(EnergyCategory::IdleLong, 4.0);
    EXPECT_DOUBLE_EQ(ledger.get(EnergyCategory::BusyIo), 3.0);
    EXPECT_DOUBLE_EQ(ledger.get(EnergyCategory::IdleLong), 4.0);
    EXPECT_DOUBLE_EQ(ledger.get(EnergyCategory::IdleShort), 0.0);
    EXPECT_DOUBLE_EQ(ledger.total(), 7.0);
}

TEST(EnergyLedger, MergeAndNormalize)
{
    EnergyLedger a, b;
    a.add(EnergyCategory::PowerCycle, 2.0);
    b.add(EnergyCategory::IdleShort, 6.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.total(), 8.0);

    EnergyLedger base;
    base.add(EnergyCategory::BusyIo, 16.0);
    EXPECT_DOUBLE_EQ(a.normalizedTo(base), 0.5);
    EXPECT_DOUBLE_EQ(a.normalizedTo(EnergyLedger{}), 0.0);
}

TEST(EnergyLedger, ClearResets)
{
    EnergyLedger ledger;
    ledger.add(EnergyCategory::IdleLong, 5.0);
    ledger.clear();
    EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
}

TEST(EnergyLedgerDeath, NegativeEnergyPanics)
{
    EnergyLedger ledger;
    EXPECT_DEATH(ledger.add(EnergyCategory::BusyIo, -1.0),
                 "negative");
}

TEST(EnergyHelpers, PowerTimesDuration)
{
    EXPECT_DOUBLE_EQ(energyJ(2.0, secondsUs(3.0)), 6.0);
    EXPECT_DOUBLE_EQ(energyJ(0.95, secondsUs(10.0)), 9.5);
    EXPECT_DOUBLE_EQ(energyJ(5.0, 0), 0.0);
}

TEST(EnergyCategoryNames, MatchFigure8Legend)
{
    EXPECT_STREQ(energyCategoryName(EnergyCategory::BusyIo),
                 "Busy I/O");
    EXPECT_STREQ(energyCategoryName(EnergyCategory::IdleShort),
                 "Idle < Breakeven");
    EXPECT_STREQ(energyCategoryName(EnergyCategory::IdleLong),
                 "Idle > Breakeven");
    EXPECT_STREQ(energyCategoryName(EnergyCategory::PowerCycle),
                 "Power cycle");
}

class DiskModel : public ::testing::Test
{
  protected:
    DiskParams params_ = fujitsuMhf2043at();
};

TEST_F(DiskModel, BusyEnergyIsExact)
{
    PowerManagedDisk disk(params_);
    // One request of 10 blocks: busy for 10 * serviceTimePerBlock.
    const TimeUs completion = disk.request(secondsUs(1.0), 10);
    EXPECT_EQ(completion,
              secondsUs(1.0) + 10 * params_.serviceTimePerBlock);
    disk.finish(completion);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::BusyIo),
                energyJ(params_.busyPowerW,
                        10 * params_.serviceTimePerBlock),
                1e-9);
}

TEST_F(DiskModel, ShortGapEnergyGoesToIdleShort)
{
    PowerManagedDisk disk(params_);
    const TimeUs done1 = disk.request(0, 1);
    // Next request 3 s after completion: below breakeven.
    disk.request(done1 + secondsUs(3.0), 1);
    disk.finish(done1 + secondsUs(3.0) +
                params_.serviceTimePerBlock);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::IdleShort),
                energyJ(params_.idlePowerW, secondsUs(3.0)), 1e-9);
    EXPECT_DOUBLE_EQ(disk.ledger().get(EnergyCategory::IdleLong),
                     0.0);
}

TEST_F(DiskModel, LongGapWithoutShutdownGoesToIdleLong)
{
    PowerManagedDisk disk(params_);
    const TimeUs done1 = disk.request(0, 1);
    disk.request(done1 + secondsUs(20.0), 1);
    disk.finish(done1 + secondsUs(20.0) +
                params_.serviceTimePerBlock);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::IdleLong),
                energyJ(params_.idlePowerW, secondsUs(20.0)), 1e-9);
    EXPECT_EQ(disk.shutdownCount(), 0u);
}

TEST_F(DiskModel, ShutdownSplitsGapIntoIdleStandbyAndCycle)
{
    PowerManagedDisk disk(params_);
    const TimeUs done1 = disk.request(0, 1);
    const TimeUs shutdown_at = done1 + secondsUs(2.0);
    ASSERT_TRUE(disk.shutdown(shutdown_at));
    const TimeUs next = done1 + secondsUs(30.0);
    disk.request(next, 1);
    disk.finish(next + params_.spinUpTime +
                params_.serviceTimePerBlock);

    // Idle 2 s, then the 0.67 s transition (covered by the lump),
    // then standby until the next request.
    const double expected_gap_energy =
        energyJ(params_.idlePowerW, secondsUs(2.0)) +
        energyJ(params_.standbyPowerW,
                secondsUs(30.0) - secondsUs(2.0) -
                    params_.shutdownTime);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::IdleLong),
                expected_gap_energy, 1e-9);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::PowerCycle),
                params_.shutdownEnergyJ + params_.spinUpEnergyJ,
                1e-9);
    EXPECT_EQ(disk.shutdownCount(), 1u);
    EXPECT_EQ(disk.spinUpCount(), 1u);
    EXPECT_EQ(disk.totalSpinUpDelay(), params_.spinUpTime);
}

TEST_F(DiskModel, ShutdownRefusedWhileBusy)
{
    PowerManagedDisk disk(params_);
    disk.request(0, 100); // busy for a while
    EXPECT_FALSE(disk.shutdown(params_.serviceTimePerBlock * 10));
    EXPECT_EQ(disk.shutdownCount(), 0u);
    disk.finish(secondsUs(10.0));
}

TEST_F(DiskModel, ShutdownRefusedWhileAlreadyDown)
{
    PowerManagedDisk disk(params_);
    const TimeUs done = disk.request(0, 1);
    ASSERT_TRUE(disk.shutdown(done + secondsUs(1.0)));
    EXPECT_FALSE(disk.shutdown(done + secondsUs(5.0)));
    EXPECT_EQ(disk.shutdownCount(), 1u);
    disk.finish(done + secondsUs(10.0));
}

TEST_F(DiskModel, RequestDuringSpinDownWaitsForTransition)
{
    PowerManagedDisk disk(params_);
    const TimeUs done = disk.request(0, 1);
    const TimeUs shutdown_at = done + secondsUs(6.0);
    ASSERT_TRUE(disk.shutdown(shutdown_at));
    // Request arrives in the middle of the 0.67 s spin-down: it must
    // wait for the spin-down AND the spin-up.
    const TimeUs arrival = shutdown_at + millisUs(100);
    const TimeUs completion = disk.request(arrival, 1);
    EXPECT_EQ(completion, shutdown_at + params_.shutdownTime +
                              params_.spinUpTime +
                              params_.serviceTimePerBlock);
    disk.finish(completion);
}

TEST_F(DiskModel, QueuedRequestsServeBackToBack)
{
    PowerManagedDisk disk(params_);
    const TimeUs done1 = disk.request(0, 10);
    // Second request arrives while the first is still being served.
    const TimeUs done2 = disk.request(millisUs(1), 5);
    EXPECT_EQ(done2, done1 + 5 * params_.serviceTimePerBlock);
    disk.finish(done2);
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::BusyIo),
                energyJ(params_.busyPowerW,
                        15 * params_.serviceTimePerBlock),
                1e-9);
}

TEST_F(DiskModel, BreakevenGapEnergyEquivalence)
{
    // At exactly the derived breakeven gap, cycling and idling cost
    // the same energy — the defining property of the breakeven time.
    const TimeUs breakeven =
        secondsUs(params_.derivedBreakevenSeconds());

    PowerManagedDisk idle_disk(params_);
    TimeUs done = idle_disk.request(0, 1);
    idle_disk.request(done + breakeven, 1);
    idle_disk.finish(done + breakeven + params_.serviceTimePerBlock);

    PowerManagedDisk cycle_disk(params_);
    done = cycle_disk.request(0, 1);
    ASSERT_TRUE(cycle_disk.shutdown(done));
    cycle_disk.request(done + breakeven, 1);
    cycle_disk.finish(done + breakeven + params_.spinUpTime +
                      params_.serviceTimePerBlock);

    const double idling =
        idle_disk.ledger().get(EnergyCategory::IdleLong) +
        idle_disk.ledger().get(EnergyCategory::IdleShort) +
        idle_disk.ledger().get(EnergyCategory::PowerCycle);
    const double cycling =
        cycle_disk.ledger().get(EnergyCategory::IdleLong) +
        cycle_disk.ledger().get(EnergyCategory::IdleShort) +
        cycle_disk.ledger().get(EnergyCategory::PowerCycle);
    // The breakeven derivation assumes the spin-up overlaps the end
    // of the gap, while the model spins up on demand *after* the
    // request arrives; the disk therefore spends an extra
    // standby * spinUpTime inside the gap.
    const double convention_delta =
        params_.standbyPowerW * usToSeconds(params_.spinUpTime);
    EXPECT_NEAR(cycling - idling, convention_delta, 0.05);
}

TEST_F(DiskModel, FinishClosesTrailingGap)
{
    PowerManagedDisk disk(params_);
    const TimeUs done = disk.request(0, 1);
    disk.finish(done + secondsUs(50.0));
    EXPECT_NEAR(disk.ledger().get(EnergyCategory::IdleLong),
                energyJ(params_.idlePowerW, secondsUs(50.0)), 1e-9);
}

TEST_F(DiskModel, StatsCountRequests)
{
    PowerManagedDisk disk(params_);
    disk.request(0, 1);
    disk.request(secondsUs(1.0), 2);
    disk.request(secondsUs(2.0), 3);
    disk.finish(secondsUs(3.0));
    EXPECT_EQ(disk.requestCount(), 3u);
}

TEST_F(DiskModel, StateTransitionsAreObservable)
{
    PowerManagedDisk disk(params_);
    EXPECT_EQ(disk.state(), DiskState::Idle);
    const TimeUs done = disk.request(0, 1000);
    EXPECT_EQ(disk.state(), DiskState::Active);
    ASSERT_TRUE(disk.shutdown(done + secondsUs(1.0)));
    EXPECT_EQ(disk.state(), DiskState::Standby);
    disk.request(done + secondsUs(10.0), 1);
    EXPECT_EQ(disk.state(), DiskState::Active);
    disk.finish(done + secondsUs(20.0));
}

TEST_F(DiskModel, DiskStateNames)
{
    EXPECT_STREQ(diskStateName(DiskState::Active), "active");
    EXPECT_STREQ(diskStateName(DiskState::Idle), "idle");
    EXPECT_STREQ(diskStateName(DiskState::Standby), "standby");
}

TEST(DiskModelDeath, TimeGoingBackwardsPanics)
{
    PowerManagedDisk disk(fujitsuMhf2043at());
    disk.request(secondsUs(5.0), 1);
    EXPECT_DEATH(disk.request(secondsUs(1.0), 1), "backwards");
}

TEST(DiskModelDeath, ZeroBlockRequestPanics)
{
    PowerManagedDisk disk(fujitsuMhf2043at());
    EXPECT_DEATH(disk.request(0, 0), "zero blocks");
}

TEST(DiskModelDeath, UseAfterFinishPanics)
{
    PowerManagedDisk disk(fujitsuMhf2043at());
    disk.finish(secondsUs(1.0));
    EXPECT_DEATH(disk.request(secondsUs(2.0), 1), "finish");
}

} // namespace
} // namespace pcap::power
