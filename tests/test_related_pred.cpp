/**
 * @file
 * Tests of the Section 2 related-work predictors: exponential
 * average (EA), busy-period heuristic (SB) and adaptive timeout
 * (ATP).
 */

#include <gtest/gtest.h>

#include "pred/adaptive_timeout.hpp"
#include "pred/busy_ratio.hpp"
#include "pred/exp_average.hpp"

namespace pcap::pred {
namespace {

IoContext
io(TimeUs time, TimeUs since_prev)
{
    IoContext ctx;
    ctx.time = time;
    ctx.sincePrev = since_prev;
    ctx.pc = 0x1000;
    return ctx;
}

// ---- Exponential average (Hwang & Wu) -------------------------------

TEST(ExpAverage, StartsPessimisticAndBacksUp)
{
    ExpAveragePredictor ea(ExpAverageConfig{});
    const ShutdownDecision decision = ea.onIo(io(secondsUs(1), -1));
    EXPECT_EQ(decision.source, DecisionSource::Backup);
    EXPECT_EQ(ea.predictedIdle(), 0);
}

TEST(ExpAverage, EstimateConverges)
{
    ExpAverageConfig config;
    config.alpha = 0.5;
    ExpAveragePredictor ea(config);

    ea.onIo(io(secondsUs(0), -1));
    ea.onIo(io(secondsUs(20), secondsUs(20)));
    EXPECT_EQ(ea.predictedIdle(), secondsUs(10)); // 0.5 * 20
    ea.onIo(io(secondsUs(40), secondsUs(20)));
    EXPECT_EQ(ea.predictedIdle(), secondsUs(15)); // 10 + 0.5*(20-10)
}

TEST(ExpAverage, PredictsOnceEstimateExceedsBreakeven)
{
    ExpAveragePredictor ea(ExpAverageConfig{});
    ea.onIo(io(secondsUs(0), -1));
    const ShutdownDecision d1 =
        ea.onIo(io(secondsUs(20), secondsUs(20)));
    // Estimate 10 s > 5.43 s: primary prediction.
    EXPECT_EQ(d1.source, DecisionSource::Primary);
    EXPECT_EQ(d1.earliest, secondsUs(21));
}

TEST(ExpAverage, ShortPeriodsDragTheEstimateDown)
{
    ExpAveragePredictor ea(ExpAverageConfig{});
    ea.onIo(io(secondsUs(0), -1));
    ea.onIo(io(secondsUs(30), secondsUs(30))); // estimate 15 s
    // A run of 2 s periods halves the estimate repeatedly.
    TimeUs now = secondsUs(30);
    ShutdownDecision decision;
    for (int i = 0; i < 4; ++i) {
        now += secondsUs(2);
        decision = ea.onIo(io(now, secondsUs(2)));
    }
    EXPECT_EQ(decision.source, DecisionSource::Backup);
    EXPECT_LT(ea.predictedIdle(), secondsUs(5.43));
}

TEST(ExpAverage, SubWaitWindowPeriodsAreFiltered)
{
    ExpAveragePredictor ea(ExpAverageConfig{});
    ea.onIo(io(secondsUs(0), -1));
    ea.onIo(io(secondsUs(20), secondsUs(20)));
    const TimeUs estimate = ea.predictedIdle();
    ea.onIo(io(secondsUs(20) + millisUs(100), millisUs(100)));
    EXPECT_EQ(ea.predictedIdle(), estimate);
}

TEST(ExpAverage, ResetForgetsTheEstimate)
{
    ExpAveragePredictor ea(ExpAverageConfig{}, secondsUs(2));
    ea.onIo(io(secondsUs(0), -1));
    ea.onIo(io(secondsUs(20), secondsUs(20)));
    ea.resetExecution();
    EXPECT_EQ(ea.predictedIdle(), 0);
    EXPECT_EQ(ea.decision(), initialConsent(secondsUs(2)));
}

TEST(ExpAverageDeath, AlphaOutOfRangeIsFatal)
{
    ExpAverageConfig config;
    config.alpha = 1.5;
    EXPECT_DEATH(ExpAveragePredictor ea(config), "alpha");
}

// ---- Busy-period heuristic (Srivastava et al.) -----------------------

TEST(BusyRatio, ShortBurstPredictsLongIdle)
{
    BusyRatioPredictor sb(BusyRatioConfig{});
    const ShutdownDecision decision = sb.onIo(io(secondsUs(1), -1));
    // A single access is a zero-length busy period: predict.
    EXPECT_EQ(decision.source, DecisionSource::Primary);
    EXPECT_EQ(decision.earliest, secondsUs(2));
}

TEST(BusyRatio, LongBurstDefersToBackup)
{
    BusyRatioConfig config;
    config.busyThreshold = secondsUs(2.0);
    BusyRatioPredictor sb(config);

    TimeUs now = secondsUs(1);
    ShutdownDecision decision = sb.onIo(io(now, -1));
    // A burst of accesses 0.5 s apart accumulates busy time.
    for (int i = 0; i < 6; ++i) {
        now += millisUs(500);
        decision = sb.onIo(io(now, millisUs(500)));
    }
    EXPECT_GT(sb.currentBusyLength(), config.busyThreshold);
    EXPECT_EQ(decision.source, DecisionSource::Backup);
}

TEST(BusyRatio, IdleGapStartsANewBusyPeriod)
{
    BusyRatioPredictor sb(BusyRatioConfig{});
    TimeUs now = secondsUs(1);
    sb.onIo(io(now, -1));
    for (int i = 0; i < 6; ++i) {
        now += millisUs(500);
        sb.onIo(io(now, millisUs(500)));
    }
    // After a 10 s gap the busy period restarts at zero.
    now += secondsUs(10);
    const ShutdownDecision decision =
        sb.onIo(io(now, secondsUs(10)));
    EXPECT_EQ(sb.currentBusyLength(), 0);
    EXPECT_EQ(decision.source, DecisionSource::Primary);
}

TEST(BusyRatio, ResetRestartsTheBusyPeriod)
{
    BusyRatioPredictor sb(BusyRatioConfig{});
    sb.onIo(io(secondsUs(1), -1));
    sb.onIo(io(secondsUs(1.5), millisUs(500)));
    sb.resetExecution();
    EXPECT_EQ(sb.currentBusyLength(), 0);
}

// ---- Adaptive timeout (Douglis / Golding) ----------------------------

TEST(AdaptiveTimeout, StartsAtInitialValue)
{
    AdaptiveTimeoutPredictor atp(AdaptiveTimeoutConfig{});
    EXPECT_EQ(atp.currentTimeout(), secondsUs(10));
    const ShutdownDecision decision =
        atp.onIo(io(secondsUs(1), -1));
    EXPECT_EQ(decision.earliest, secondsUs(11));
    EXPECT_EQ(decision.source, DecisionSource::Primary);
}

TEST(AdaptiveTimeout, CorrectShutdownShrinksTheTimer)
{
    AdaptiveTimeoutPredictor atp(AdaptiveTimeoutConfig{});
    atp.onIo(io(secondsUs(0), -1));
    // 30 s idle: the 10 s timer fired and the disk slept 20 s — a
    // correct decision, so the timer shrinks by the factor 0.9.
    atp.onIo(io(secondsUs(30), secondsUs(30)));
    EXPECT_EQ(atp.currentTimeout(), secondsUs(9));
}

TEST(AdaptiveTimeout, PrematureShutdownGrowsTheTimer)
{
    AdaptiveTimeoutPredictor atp(AdaptiveTimeoutConfig{});
    atp.onIo(io(secondsUs(0), -1));
    // 12 s idle: the timer fired at 10 s but the disk was woken 2 s
    // later — premature, so the timer grows by the factor 1.6.
    atp.onIo(io(secondsUs(12), secondsUs(12)));
    EXPECT_EQ(atp.currentTimeout(), secondsUs(16));
}

TEST(AdaptiveTimeout, UnexpiredTimerLeavesTheValueAlone)
{
    AdaptiveTimeoutPredictor atp(AdaptiveTimeoutConfig{});
    atp.onIo(io(secondsUs(0), -1));
    atp.onIo(io(secondsUs(4), secondsUs(4))); // timer never fired
    EXPECT_EQ(atp.currentTimeout(), secondsUs(10));
}

TEST(AdaptiveTimeout, ClampsAtTheBounds)
{
    AdaptiveTimeoutConfig config;
    config.minTimeout = secondsUs(8.0);
    config.maxTimeout = secondsUs(12.0);
    AdaptiveTimeoutPredictor atp(config);

    TimeUs now = 0;
    atp.onIo(io(now, -1));
    for (int i = 0; i < 10; ++i) {
        now += secondsUs(100);
        atp.onIo(io(now, secondsUs(100)));
    }
    EXPECT_EQ(atp.currentTimeout(), secondsUs(8.0)); // min clamp

    for (int i = 0; i < 10; ++i) {
        now += secondsUs(9);
        atp.onIo(io(now, secondsUs(9)));
    }
    EXPECT_EQ(atp.currentTimeout(), secondsUs(12.0)); // max clamp
}

TEST(AdaptiveTimeout, ResetRestoresInitialTimeout)
{
    AdaptiveTimeoutPredictor atp(AdaptiveTimeoutConfig{});
    atp.onIo(io(secondsUs(0), -1));
    atp.onIo(io(secondsUs(30), secondsUs(30)));
    atp.resetExecution();
    EXPECT_EQ(atp.currentTimeout(), secondsUs(10));
}

TEST(AdaptiveTimeoutDeath, BadBoundsAreFatal)
{
    AdaptiveTimeoutConfig config;
    config.minTimeout = secondsUs(20);
    config.maxTimeout = secondsUs(10);
    EXPECT_DEATH(AdaptiveTimeoutPredictor atp(config), "bounds");
}

} // namespace
} // namespace pcap::pred
