/**
 * @file
 * Timeline buckets, the quantile sketch, and the span tracer.
 *
 *  - Timeline rescaling: empty/single/boundary events, cascades that
 *    double the width several times, and conservation of every
 *    series across folds.
 *  - LogSketch: quantiles within the configured relative accuracy,
 *    merge equivalent to bulk insertion (the fleet determinism
 *    contract), and a sane median-absolute-deviation.
 *  - TraceRecorder/Span: events recorded per thread, ring overflow
 *    counted as drops (never reallocation), and the exported Chrome
 *    trace JSON well-formed.
 *  - TimelineObserver: an observer-driven cell reconciles residency
 *    with simulated time and energy with the disk's power draws,
 *    across executions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perf.hpp"
#include "obs/sketch.hpp"
#include "obs/timeline.hpp"
#include "obs/tracing.hpp"
#include "power/disk.hpp"
#include "sim/input.hpp"
#include "sim/kernel.hpp"
#include "sim/observer.hpp"

namespace pcap {
namespace {

std::uint64_t
totalState(const obs::Timeline &timeline, std::size_t state)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < timeline.bucketCount(); ++i)
        total += timeline.bucket(i).stateUs[state];
    return total;
}

std::uint64_t
totalOutcomes(const obs::Timeline &timeline, std::size_t outcome)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < timeline.bucketCount(); ++i)
        total += timeline.bucket(i).outcomes[outcome];
    return total;
}

double
totalEnergy(const obs::Timeline &timeline)
{
    double total = 0.0;
    for (std::size_t i = 0; i < timeline.bucketCount(); ++i)
        for (std::size_t e = 0; e < obs::kTimelineEnergies; ++e)
            total += timeline.bucket(i).energyJ[e];
    return total;
}

TEST(TimelineRescale, EmptyTimelineCoversNothing)
{
    obs::Timeline timeline(4, 10);
    EXPECT_EQ(timeline.spanUs(), 0);
    EXPECT_EQ(timeline.usedBuckets(), 0u);
    EXPECT_EQ(timeline.rescales(), 0u);
    EXPECT_EQ(timeline.bucketWidthUs(), 10);
}

TEST(TimelineRescale, SinglePointEventLandsInItsBucket)
{
    obs::Timeline timeline(4, 10);
    timeline.countOutcome(2, 25);
    EXPECT_EQ(timeline.rescales(), 0u);
    EXPECT_EQ(timeline.spanUs(), 25);
    EXPECT_EQ(timeline.usedBuckets(), 3u);
    EXPECT_EQ(timeline.bucket(2).outcomes[2], 1u);
}

TEST(TimelineRescale, RangeMayEndOnCapacityButPointRescales)
{
    // A residency range ending exactly at width * buckets fits the
    // half-open coverage; a point event there is one past the end.
    obs::Timeline range(4, 10);
    range.addStateResidency(0, 0, 40);
    EXPECT_EQ(range.rescales(), 0u);
    EXPECT_EQ(range.usedBuckets(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(range.bucket(i).stateUs[0], 10u);

    obs::Timeline point(4, 10);
    point.addStateResidency(0, 0, 40);
    point.countShutdown(40);
    EXPECT_EQ(point.rescales(), 1u);
    EXPECT_EQ(point.bucketWidthUs(), 20);
    // Residency folded pairwise into the lower half.
    EXPECT_EQ(point.bucket(0).stateUs[0], 20u);
    EXPECT_EQ(point.bucket(1).stateUs[0], 20u);
    EXPECT_EQ(point.bucket(2).stateUs[0], 0u);
    EXPECT_EQ(point.bucket(2).shutdowns, 1u);
}

TEST(TimelineRescale, CascadePreservesEveryTotal)
{
    obs::Timeline timeline(4, 1);
    timeline.addStateResidency(1, 0, 4);
    timeline.addEnergy(0, 0, 4, 2.0);
    timeline.countOutcome(0, 1);
    timeline.sampleTable(2, 17);

    // An event at t=63 needs width 16: four doublings from 1.
    timeline.countSpinUp(63);
    EXPECT_EQ(timeline.rescales(), 4u);
    EXPECT_EQ(timeline.bucketWidthUs(), 16);
    EXPECT_EQ(timeline.spanUs(), 63);
    EXPECT_EQ(timeline.usedBuckets(), 4u);

    EXPECT_EQ(totalState(timeline, 1), 4u);
    EXPECT_EQ(totalOutcomes(timeline, 0), 1u);
    EXPECT_DOUBLE_EQ(totalEnergy(timeline), 2.0);
    EXPECT_EQ(timeline.bucket(3).spinUps, 1u);
    // All pre-rescale activity folded into bucket 0; the table
    // sample survived the folds.
    EXPECT_TRUE(timeline.bucket(0).tableSampled);
    EXPECT_EQ(timeline.bucket(0).tableEntries, 17u);
}

TEST(TimelineRescale, RangesSplitLinearlyAcrossBuckets)
{
    obs::Timeline timeline(4, 10);
    timeline.addEnergy(3, 5, 15, 1.0);
    EXPECT_DOUBLE_EQ(timeline.bucket(0).energyJ[3], 0.5);
    EXPECT_DOUBLE_EQ(timeline.bucket(1).energyJ[3], 0.5);

    // Point energy (start == end) lands whole in one bucket.
    timeline.addEnergy(3, 20, 20, 2.5);
    EXPECT_DOUBLE_EQ(timeline.bucket(2).energyJ[3], 2.5);
}

TEST(LogSketch, QuantilesWithinRelativeAccuracy)
{
    obs::LogSketch sketch;
    for (int i = 1; i <= 1000; ++i)
        sketch.add(static_cast<double>(i));
    EXPECT_EQ(sketch.count(), 1000u);
    const double accuracy = sketch.relativeAccuracy();
    for (double q : {0.5, 0.9, 0.99}) {
        const double exact = std::ceil(q * 1000.0);
        EXPECT_NEAR(sketch.quantile(q), exact, accuracy * exact);
    }
}

TEST(LogSketch, HandlesZerosAndNegatives)
{
    obs::LogSketch sketch;
    sketch.add(-5.0);
    sketch.add(0.0);
    sketch.add(5.0);
    EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
    EXPECT_NEAR(sketch.quantile(0.01), -5.0, 0.1);
    EXPECT_NEAR(sketch.quantile(0.99), 5.0, 0.1);
}

TEST(LogSketch, MergeEqualsBulkAddExactly)
{
    // The fleet determinism contract: values split across shards
    // and merged must read back the same quantiles as one sketch
    // fed everything — exactly, not just within accuracy.
    obs::LogSketch bulk, left, right;
    for (int i = 1; i <= 400; ++i) {
        const double v = 0.25 * i;
        bulk.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), bulk.count());
    for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(left.quantile(q), bulk.quantile(q));
}

TEST(LogSketch, MedianAbsDeviationOfSpreadData)
{
    obs::LogSketch sketch;
    for (int i = 1; i <= 9; ++i)
        sketch.add(static_cast<double>(i));
    // Median 5, |dev| = {4,3,2,1,0,1,2,3,4}, MAD = 2.
    EXPECT_NEAR(sketch.medianAbsDeviation(), 2.0, 0.1);

    obs::LogSketch constant;
    for (int i = 0; i < 5; ++i)
        constant.add(3.0);
    EXPECT_NEAR(constant.medianAbsDeviation(), 0.0, 1e-9);
}

TEST(TraceRecorder, SpansRecordAndExportWellFormedJson)
{
    obs::TraceRecorder recorder(16);
    obs::setTraceRecorder(&recorder);
    {
        obs::Span outer("phase", "outer-detail");
        obs::Span inner("cell-replay", "global-mozilla");
    }
    { obs::Span plain("inputs"); }
    obs::setTraceRecorder(nullptr);
    EXPECT_EQ(recorder.totalEvents(), 3u);
    EXPECT_EQ(recorder.totalDropped(), 0u);
    EXPECT_EQ(recorder.threadCount(), 1u);

    const std::string path =
        testing::TempDir() + "/pcap-trace-test.json";
    recorder.writeChromeTrace(path);
    std::ifstream is(path);
    ASSERT_TRUE(is);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    auto countOf = [&](const std::string &needle) {
        std::size_t count = 0;
        for (std::size_t at = text.find(needle);
             at != std::string::npos;
             at = text.find(needle, at + needle.size()))
            ++count;
        return count;
    };
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    // One complete ("X") event per span — complete events carry
    // their own duration, so no begin/end imbalance is possible —
    // plus one thread_name metadata record for the one thread.
    EXPECT_EQ(countOf("\"ph\": \"X\""), 3u);
    EXPECT_EQ(countOf("\"ph\": \"M\""), 1u);
    EXPECT_EQ(countOf("\"ts\": "), 3u);
    EXPECT_EQ(countOf("\"dur\": "), 3u);
    EXPECT_EQ(countOf("\"pid\": 1"), 4u);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("global-mozilla"), std::string::npos);
    // Braces and brackets balance — the file parses as JSON.
    EXPECT_EQ(countOf("{"), countOf("}"));
    EXPECT_EQ(countOf("["), countOf("]"));
}

TEST(TraceRecorder, SpansCarryPerfArgsWhenProfilerInstalled)
{
    // Counter deltas live in a per-thread side array allocated only
    // when a profiler is armed at buffer registration — so install
    // the profiler first, like bench_all does, and force the
    // software backend so the test needs no PMU access.
    setenv("PCAP_PERF_BACKEND", "software", 1);
    obs::PerfProfiler profiler;
    obs::setPerfProfiler(&profiler);
    obs::TraceRecorder recorder(16);
    obs::setTraceRecorder(&recorder);
    { obs::Span span("profiled", "with-counters"); }
    obs::setTraceRecorder(nullptr);
    obs::setPerfProfiler(nullptr);
    unsetenv("PCAP_PERF_BACKEND");
    EXPECT_EQ(recorder.totalEvents(), 1u);

    const std::string path =
        testing::TempDir() + "/pcap-trace-perf-test.json";
    recorder.writeChromeTrace(path);
    std::ifstream is(path);
    ASSERT_TRUE(is);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();
    EXPECT_NE(text.find("\"cycles\": "), std::string::npos);
    EXPECT_NE(text.find("\"ipc\": "), std::string::npos);
    EXPECT_NE(text.find("\"task_clock_us\": "), std::string::npos);
}

TEST(TraceRecorder, RingOverflowDropsInsteadOfGrowing)
{
    obs::TraceRecorder recorder(4);
    obs::setTraceRecorder(&recorder);
    for (int i = 0; i < 10; ++i)
        obs::Span span("tiny");
    obs::setTraceRecorder(nullptr);
    EXPECT_EQ(recorder.totalEvents(), 4u);
    EXPECT_EQ(recorder.totalDropped(), 6u);
}

TEST(Span, IsANoOpWithoutARecorder)
{
    ASSERT_FALSE(obs::traceEnabled());
    obs::Span span("orphan", "never-recorded");
}

TEST(TimelineObserver, ReconcilesResidencyAndEnergy)
{
    using power::DiskState;
    const power::DiskParams disk; // paper defaults
    sim::TimelineObserver observer(disk, /*trackDisk=*/true,
                                   /*buckets=*/256);

    sim::ExecutionInput input;
    input.endTime = 10 * kUsPerSec;
    observer.onExecutionBegin(input);
    observer.onDiskStateChange(1 * kUsPerSec, DiskState::Idle,
                               DiskState::Active);
    observer.onDiskStateChange(3 * kUsPerSec, DiskState::Active,
                               DiskState::Idle);
    observer.onShutdownIssued(4 * kUsPerSec);
    observer.onDiskStateChange(4 * kUsPerSec, DiskState::Idle,
                               DiskState::Standby);
    sim::IdlePeriodRecord record;
    record.start = 3 * kUsPerSec;
    record.end = 6 * kUsPerSec;
    record.outcome = sim::IdleOutcome::HitPrimary;
    observer.onIdlePeriod(record);
    observer.onSpinUpServed(6 * kUsPerSec, 0);
    observer.onDiskStateChange(6 * kUsPerSec, DiskState::Standby,
                               DiskState::Active);
    observer.onExecutionEnd(input, sim::RunResult{});

    const obs::Timeline &timeline = observer.timeline();
    EXPECT_EQ(timeline.spanUs(), 10 * kUsPerSec);
    // Residency is a partition of simulated time.
    EXPECT_EQ(totalState(timeline, 0), 6 * kUsPerSec); // active
    EXPECT_EQ(totalState(timeline, 1), 2 * kUsPerSec); // idle
    EXPECT_EQ(totalState(timeline, 2), 0u);            // low-power
    EXPECT_EQ(totalState(timeline, 3), 2 * kUsPerSec); // standby
    EXPECT_EQ(totalOutcomes(
                  timeline,
                  static_cast<std::size_t>(
                      sim::IdleOutcome::HitPrimary)),
              1u);
    std::uint64_t shutdowns = 0, spinUps = 0;
    for (std::size_t i = 0; i < timeline.bucketCount(); ++i) {
        shutdowns += timeline.bucket(i).shutdowns;
        spinUps += timeline.bucket(i).spinUps;
    }
    EXPECT_EQ(shutdowns, 1u);
    EXPECT_EQ(spinUps, 1u);

    // Energy: state draw integrated over residency, plus one
    // spin-down and one spin-up transition.
    const double expected = disk.busyPowerW * 6.0 +
                            disk.idlePowerW * 2.0 +
                            disk.standbyPowerW * 2.0 +
                            disk.shutdownEnergyJ +
                            disk.spinUpEnergyJ;
    EXPECT_NEAR(totalEnergy(timeline), expected, 1e-9);

    // A second execution appends after the first (offset, not
    // overlap): 5 more idle seconds extend the span.
    sim::ExecutionInput second;
    second.endTime = 5 * kUsPerSec;
    observer.onExecutionBegin(second);
    observer.onExecutionEnd(second, sim::RunResult{});
    EXPECT_EQ(timeline.spanUs(), 15 * kUsPerSec);
    EXPECT_EQ(totalState(timeline, 1), 7 * kUsPerSec);
}

TEST(TimelineObserver, WithoutDiskTrackingKeepsOnlyOutcomes)
{
    const power::DiskParams disk;
    sim::TimelineObserver observer(disk, /*trackDisk=*/false);

    sim::ExecutionInput input;
    input.endTime = 2 * kUsPerSec;
    observer.onExecutionBegin(input);
    sim::IdlePeriodRecord record;
    record.end = kUsPerSec;
    record.outcome = sim::IdleOutcome::Short;
    observer.onIdlePeriod(record);
    observer.onExecutionEnd(input, sim::RunResult{});

    const obs::Timeline &timeline = observer.timeline();
    EXPECT_EQ(totalOutcomes(timeline, 0), 1u);
    for (std::size_t s = 0; s < obs::kTimelineStates; ++s)
        EXPECT_EQ(totalState(timeline, s), 0u);
    EXPECT_DOUBLE_EQ(totalEnergy(timeline), 0.0);
}

TEST(TimelineWriters, JsonAndCsvRoundTripTheSchema)
{
    obs::Timeline timeline(4, 10);
    timeline.addStateResidency(0, 0, 15);
    timeline.countShutdown(12);
    timeline.sampleTable(5, 3);

    obs::TimelineMeta meta;
    meta.cell = "test-cell";
    meta.mode = "global";
    meta.app = "mozilla";
    meta.policy = "PCAP";
    meta.stateNames = {"active", "idle", "low_power", "standby"};
    meta.outcomeNames = {"short",       "not_predicted",
                         "hit_primary", "hit_backup",
                         "miss_primary", "miss_backup"};
    meta.energyNames = {"active", "idle", "low_power", "standby",
                        "transition"};

    const std::string stem =
        testing::TempDir() + "/pcap-timeline-test";
    obs::writeTimelineJson(timeline, meta, stem + ".json");
    obs::writeTimelineCsv(timeline, meta, stem + ".csv");

    std::ifstream json(stem + ".json");
    ASSERT_TRUE(json);
    std::stringstream buffer;
    buffer << json.rdbuf();
    const std::string text = buffer.str();
    EXPECT_NE(text.find("\"pcap-timeline-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"test-cell\""), std::string::npos);
    EXPECT_NE(text.find("\"active\""), std::string::npos);
    EXPECT_NE(text.find("\"table_entries\""), std::string::npos);

    std::ifstream csv(stem + ".csv");
    ASSERT_TRUE(csv);
    std::string header;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_EQ(header.rfind("bucket,start_us,width_us,active_us",
                           0),
              0u);
    std::size_t rows = 0;
    for (std::string line; std::getline(csv, line);)
        ++rows;
    EXPECT_EQ(rows, timeline.usedBuckets());
}

} // namespace
} // namespace pcap
