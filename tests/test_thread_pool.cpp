/**
 * @file
 * ThreadPool: deterministic fan-out/join, inline mode, exception
 * propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace pcap {
namespace {

TEST(ThreadPool, InlineModeSpawnsNoWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workerCount(), 0u);

    int calls = 0;
    pool.submit([&] { ++calls; });
    pool.wait();
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(jobs);
        std::vector<std::atomic<int>> counts(1000);
        pool.parallelFor(counts.size(),
                         [&](std::size_t i) { ++counts[i]; });
        for (const auto &count : counts)
            EXPECT_EQ(count.load(), 1);
    }
}

TEST(ThreadPool, ParallelForResultsMatchSerialLoop)
{
    const std::size_t n = 257;
    std::vector<int> serial(n), parallel(n);
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = static_cast<int>(i * i % 97);

    parallelFor(4, n, [&](std::size_t i) {
        parallel[i] = static_cast<int>(i * i % 97);
    });
    EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, ParallelForEmptyAndSingle)
{
    int calls = 0;
    parallelFor(4, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(4, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    pool.parallelFor(10000, [&](std::size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

} // namespace
} // namespace pcap
