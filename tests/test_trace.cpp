/**
 * @file
 * Unit tests for the trace substrate: event schema, trace container,
 * structural validation and the lifecycle-enforcing builder.
 */

#include <gtest/gtest.h>

#include "trace/builder.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace pcap::trace {
namespace {

TraceEvent
makeIo(TimeUs time, Pid pid, EventType type = EventType::Read,
       Address pc = 0x1000)
{
    TraceEvent event;
    event.time = time;
    event.pid = pid;
    event.type = type;
    event.pc = pc;
    return event;
}

TEST(EventType, NamesRoundTrip)
{
    for (EventType type :
         {EventType::Read, EventType::Write, EventType::Open,
          EventType::Close, EventType::Fork, EventType::Exit}) {
        EventType parsed;
        ASSERT_TRUE(parseEventType(eventTypeName(type), parsed));
        EXPECT_EQ(parsed, type);
    }
}

TEST(EventType, ParseRejectsUnknownNames)
{
    EventType parsed;
    EXPECT_FALSE(parseEventType("mmap", parsed));
    EXPECT_FALSE(parseEventType("", parsed));
    EXPECT_FALSE(parseEventType("READ", parsed));
}

TEST(EventType, IoClassification)
{
    EXPECT_TRUE(isIoEvent(EventType::Read));
    EXPECT_TRUE(isIoEvent(EventType::Write));
    EXPECT_TRUE(isIoEvent(EventType::Open));
    EXPECT_FALSE(isIoEvent(EventType::Close));
    EXPECT_FALSE(isIoEvent(EventType::Fork));
    EXPECT_FALSE(isIoEvent(EventType::Exit));
}

TEST(TraceEvent, OrdersByTimeThenPid)
{
    const TraceEvent a = makeIo(10, 2);
    const TraceEvent b = makeIo(20, 1);
    const TraceEvent c = makeIo(10, 1);
    EXPECT_LT(a, b);
    EXPECT_LT(c, a);
}

TEST(Trace, SortByTimeIsStable)
{
    Trace trace("app", 0);
    trace.append(makeIo(30, 1));
    trace.append(makeIo(10, 1));
    trace.append(makeIo(20, 1));
    trace.sortByTime();
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.events()[0].time, 10);
    EXPECT_EQ(trace.events()[2].time, 30);
}

TEST(Trace, IoCountIgnoresLifecycleAndClose)
{
    Trace trace("app", 0);
    trace.append(makeIo(1, 1, EventType::Open));
    trace.append(makeIo(2, 1, EventType::Read));
    trace.append(makeIo(3, 1, EventType::Write));
    trace.append(makeIo(4, 1, EventType::Close));
    trace.append(makeIo(5, 1, EventType::Exit));
    EXPECT_EQ(trace.ioCount(), 3u);
}

TEST(Trace, PidsIncludeForkedChildren)
{
    Trace trace("app", 0);
    trace.append(makeIo(1, 7));
    TraceEvent fork = makeIo(2, 7, EventType::Fork);
    fork.fd = 9;
    trace.append(fork);
    const auto pids = trace.pids();
    EXPECT_EQ(pids.size(), 2u);
    EXPECT_EQ(pids[0], 7);
    EXPECT_EQ(pids[1], 9);
}

TEST(Trace, EventsOfFiltersByPid)
{
    Trace trace("app", 0);
    trace.append(makeIo(1, 1));
    trace.append(makeIo(2, 2));
    trace.append(makeIo(3, 1));
    EXPECT_EQ(trace.eventsOf(1).size(), 2u);
    EXPECT_EQ(trace.eventsOf(2).size(), 1u);
    EXPECT_TRUE(trace.eventsOf(3).empty());
}

TEST(Trace, StartAndEndTimes)
{
    Trace trace("app", 0);
    EXPECT_EQ(trace.startTime(), 0);
    EXPECT_EQ(trace.endTime(), 0);
    trace.append(makeIo(5, 1));
    trace.append(makeIo(42, 1));
    EXPECT_EQ(trace.startTime(), 5);
    EXPECT_EQ(trace.endTime(), 42);
}

TEST(TraceValidate, AcceptsWellFormedTrace)
{
    TraceBuilder builder("app", 0, 1);
    builder.io(10, 1, EventType::Read, 0x1000, 3, 5, 0, 4096);
    builder.fork(20, 1, 2);
    builder.io(30, 2, EventType::Write, 0x2000, 4, 6, 0, 4096);
    builder.exit(40, 2);
    const Trace trace = builder.finish(50);
    EXPECT_EQ(trace.validate(), "");
}

TEST(TraceValidate, RejectsOutOfOrderEvents)
{
    Trace trace("app", 0);
    trace.append(makeIo(20, 1));
    trace.append(makeIo(10, 1));
    trace.append(makeIo(30, 1, EventType::Exit));
    EXPECT_NE(trace.validate().find("out of order"),
              std::string::npos);
}

TEST(TraceValidate, RejectsActionsFromUnknownPid)
{
    Trace trace("app", 0);
    trace.append(makeIo(10, 1));
    trace.append(makeIo(20, 2)); // pid 2 was never forked
    EXPECT_NE(trace.validate().find("before being forked"),
              std::string::npos);
}

TEST(TraceValidate, RejectsActionsAfterExit)
{
    Trace trace("app", 0);
    trace.append(makeIo(10, 1));
    trace.append(makeIo(20, 1, EventType::Exit));
    trace.append(makeIo(30, 1));
    EXPECT_NE(trace.validate().find("after exit"),
              std::string::npos);
}

TEST(TraceValidate, RejectsDoubleFork)
{
    Trace trace("app", 0);
    trace.append(makeIo(10, 1));
    TraceEvent fork = makeIo(20, 1, EventType::Fork);
    fork.fd = 1; // forking an existing pid
    trace.append(fork);
    EXPECT_NE(trace.validate().find("existing pid"),
              std::string::npos);
}

TEST(TraceValidate, RejectsProcessesThatNeverExit)
{
    Trace trace("app", 0);
    trace.append(makeIo(10, 1));
    EXPECT_NE(trace.validate().find("never exit"),
              std::string::npos);
}

TEST(TraceBuilder, FinishExitsAllLiveProcesses)
{
    TraceBuilder builder("app", 3, 1);
    builder.io(10, 1, EventType::Read, 0x1000, 3, 5, 0, 4096);
    builder.fork(20, 1, 2);
    EXPECT_TRUE(builder.isLive(2));
    const Trace trace = builder.finish(100);
    EXPECT_EQ(trace.validate(), "");
    EXPECT_EQ(trace.app(), "app");
    EXPECT_EQ(trace.execution(), 3);
    // Two exits must have been appended.
    std::size_t exits = 0;
    for (const auto &event : trace.events())
        exits += event.type == EventType::Exit;
    EXPECT_EQ(exits, 2u);
}

TEST(TraceBuilder, TracksLiveness)
{
    TraceBuilder builder("app", 0, 1);
    EXPECT_TRUE(builder.isLive(1));
    EXPECT_FALSE(builder.isLive(2));
    builder.fork(10, 1, 2);
    EXPECT_TRUE(builder.isLive(2));
    builder.exit(20, 2);
    EXPECT_FALSE(builder.isLive(2));
    EXPECT_EQ(builder.livePids().size(), 1u);
    (void)builder.finish(30);
}

TEST(TraceBuilderDeath, IoFromDeadPidPanics)
{
    TraceBuilder builder("app", 0, 1);
    builder.exit(10, 1);
    EXPECT_DEATH(builder.io(20, 1, EventType::Read, 0x1000, 3, 5, 0,
                            4096),
                 "non-live pid");
}

TEST(TraceBuilderDeath, ForkOfUsedPidPanics)
{
    TraceBuilder builder("app", 0, 1);
    EXPECT_DEATH(builder.fork(10, 1, 1), "already used");
}

TEST(TraceBuilderDeath, LifecycleViaIoPanics)
{
    TraceBuilder builder("app", 0, 1);
    EXPECT_DEATH(builder.io(10, 1, EventType::Fork, 0, 2, 0, 0, 0),
                 "lifecycle");
}

} // namespace
} // namespace pcap::trace
