/**
 * @file
 * Provenance flight-recorder tests: ring-buffer semantics, binary
 * round-trip, name-table lockstep with sim/pred, forensics
 * aggregation, and the end-to-end reconciliation guarantee — the
 * per-signature outcome counts summed over a cell's provenance log
 * equal the AccuracyStats the same run reported.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/provenance.hpp"
#include "pred/predictor.hpp"
#include "sim/experiment.hpp"
#include "sim/observer.hpp"

namespace pcap {
namespace {

/** A record with recognizably non-default fields. */
obs::ProvenanceRecord
sampleRecord(int i)
{
    obs::ProvenanceRecord record;
    record.startUs = 1000 * i;
    record.endUs = 1000 * i + 500;
    record.shutdownUs = (i % 2) ? record.startUs + 100 : -1;
    record.decisionTimeUs = record.startUs;
    record.decisionEarliestUs = record.startUs + 50;
    record.pid = 100 + i;
    record.execution = i / 3;
    record.signature = 0xdead0000u + static_cast<std::uint32_t>(i);
    record.pathHash = 0x1234567890abcdefull + i;
    record.pathLength = 12 + i;
    record.pathTailLength = 3;
    record.pathTail = {0x400100u, 0x400200u,
                       0x400300u + static_cast<std::uint32_t>(i)};
    record.outcome =
        static_cast<std::uint8_t>(i % obs::kProvenanceOutcomes);
    record.source = static_cast<std::uint8_t>(i % 3);
    record.flags = obs::kProvHasDecision | obs::kProvEntryPresent;
    record.entryHitsBefore = 1;
    record.entryTrainingsBefore = 2;
    record.entryHitsAfter = 3;
    record.entryTrainingsAfter = 4;
    record.energyDeltaJ = 0.25 * i;
    return record;
}

/** In-memory sink collecting records in arrival order. */
class CollectSink final : public obs::ProvenanceSink
{
  public:
    void write(const obs::ProvenanceRecord &record) override
    {
        records.push_back(record);
    }

    void close() override { ++closes; }

    std::vector<obs::ProvenanceRecord> records;
    int closes = 0;
};

struct TempDir
{
    TempDir()
    {
        path = (std::filesystem::temp_directory_path() /
                ("pcap-test-provenance-" +
                 std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string path;
};

TEST(ProvenanceRecorder, SinklessRingKeepsNewestWindow)
{
    obs::ProvenanceRecorder recorder(4);
    for (int i = 0; i < 10; ++i)
        recorder.append(sampleRecord(i));

    EXPECT_EQ(recorder.appended(), 10u);
    EXPECT_EQ(recorder.overwritten(), 6u);
    EXPECT_EQ(recorder.flushed(), 0u);

    const auto kept = recorder.snapshot();
    ASSERT_EQ(kept.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(kept[i], sampleRecord(6 + i)) << "slot " << i;
}

TEST(ProvenanceRecorder, SinksSeeEveryRecordExactlyOnceInOrder)
{
    obs::ProvenanceRecorder recorder(2); // forces mid-run drains
    CollectSink sink;
    recorder.addSink(&sink);
    for (int i = 0; i < 5; ++i)
        recorder.append(sampleRecord(i));
    recorder.close();

    EXPECT_EQ(recorder.overwritten(), 0u);
    EXPECT_EQ(recorder.flushed(), 5u);
    ASSERT_EQ(sink.records.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sink.records[i], sampleRecord(i)) << "record " << i;
    EXPECT_EQ(sink.closes, 1);

    recorder.close(); // idempotent
    EXPECT_EQ(sink.closes, 1);
}

TEST(ProvenanceRecorderDeath, AddSinkAfterAppendPanics)
{
    obs::ProvenanceRecorder recorder(4);
    CollectSink sink;
    recorder.append(sampleRecord(0));
    EXPECT_DEATH(recorder.addSink(&sink), "addSink");
}

TEST(ProvenanceBinary, RoundTripPreservesEveryField)
{
    TempDir dir;
    const std::string path = dir.path + "/roundtrip.prov.bin";
    {
        obs::BinaryProvenanceWriter writer(path);
        for (int i = 0; i < 7; ++i)
            writer.write(sampleRecord(i));
        writer.close();
        EXPECT_EQ(writer.recordCount(), 7u);
    }

    std::vector<obs::ProvenanceRecord> records;
    ASSERT_EQ(obs::readProvenanceFile(path, records), "");
    ASSERT_EQ(records.size(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(records[i], sampleRecord(i)) << "record " << i;
}

TEST(ProvenanceBinary, ReaderRejectsGarbage)
{
    TempDir dir;
    std::vector<obs::ProvenanceRecord> records;

    EXPECT_NE(obs::readProvenanceFile(dir.path + "/missing.prov.bin",
                                      records),
              "");

    const std::string bad = dir.path + "/bad.prov.bin";
    {
        std::ofstream os(bad, std::ios::binary);
        os << "this is not a provenance file";
    }
    EXPECT_NE(obs::readProvenanceFile(bad, records), "");
}

TEST(ProvenanceNames, OutcomeTableMirrorsSimIdleOutcome)
{
    // The obs layer cannot include sim (dependency order), so the
    // outcome codes mirror sim::IdleOutcome by value. This is the
    // lockstep guard: renaming or reordering either side fails here.
    for (std::size_t i = 0; i < obs::kProvenanceOutcomes; ++i) {
        EXPECT_STREQ(
            obs::provenanceOutcomeName(static_cast<std::uint8_t>(i)),
            sim::idleOutcomeName(static_cast<sim::IdleOutcome>(i)))
            << "outcome code " << i;
    }
}

TEST(ProvenanceNames, SourceTableMirrorsPredDecisionSource)
{
    for (std::uint8_t i = 0; i < 3; ++i) {
        EXPECT_STREQ(
            obs::provenanceSourceName(i),
            pred::decisionSourceName(
                static_cast<pred::DecisionSource>(i)))
            << "source code " << int(i);
    }
}

TEST(ProvenanceForensics, DetectsCollisionsAndRanksMispredictors)
{
    obs::ProvenanceForensics forensics;

    // Signature A: two distinct paths (a collision), 2 misses.
    obs::ProvenanceRecord a1 = sampleRecord(0);
    a1.signature = 0xaaaa;
    a1.pathHash = 1;
    a1.outcome = obs::kOutcomeMissPrimary;
    obs::ProvenanceRecord a2 = a1;
    a2.pathHash = 2; // same signature, different full path
    a2.outcome = obs::kOutcomeMissBackup;
    // Signature B: one path, 1 miss + 1 hit.
    obs::ProvenanceRecord b1 = sampleRecord(1);
    b1.signature = 0xbbbb;
    b1.pathHash = 3;
    b1.outcome = obs::kOutcomeMissPrimary;
    obs::ProvenanceRecord b2 = b1;
    b2.outcome = obs::kOutcomeHitPrimary;
    // A record with no decision attached.
    obs::ProvenanceRecord none;
    none.outcome = obs::kOutcomeShort;

    for (const auto &record : {a1, a2, b1, b2, none})
        forensics.add(record);

    EXPECT_EQ(forensics.records(), 5u);
    EXPECT_EQ(forensics.noDecision(), 1u);
    EXPECT_EQ(forensics.outcomeTotals()[obs::kOutcomeShort], 1u);
    EXPECT_EQ(forensics.outcomeTotals()[obs::kOutcomeMissPrimary],
              2u);

    const auto collisions = forensics.collisions();
    ASSERT_EQ(collisions.size(), 1u);
    EXPECT_EQ(collisions[0]->signature, 0xaaaau);
    EXPECT_EQ(collisions[0]->pathCounts.size(), 2u);

    const auto top = forensics.topMispredictors(10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0]->signature, 0xaaaau); // 2 misses before 1
    EXPECT_EQ(top[1]->signature, 0xbbbbu);
    EXPECT_EQ(top[1]->hits(), 1u);
}

/** Outcome totals of @p f restated as AccuracyStats-shaped sums. */
void
expectReconciles(const obs::ProvenanceForensics &f,
                 const sim::AccuracyStats &stats)
{
    const auto &totals = f.outcomeTotals();
    EXPECT_EQ(totals[obs::kOutcomeHitPrimary], stats.hitPrimary);
    EXPECT_EQ(totals[obs::kOutcomeHitBackup], stats.hitBackup);
    EXPECT_EQ(totals[obs::kOutcomeMissPrimary], stats.missPrimary);
    EXPECT_EQ(totals[obs::kOutcomeMissBackup], stats.missBackup);
    EXPECT_EQ(totals[obs::kOutcomeNotPredicted],
              stats.notPredicted);
    // Every non-Short record is exactly one AccuracyStats tally.
    EXPECT_EQ(f.records() - totals[obs::kOutcomeShort],
              stats.hits() + stats.misses() + stats.notPredicted);
}

TEST(ProvenanceReconciliation, LogMatchesAccuracyStatsExactly)
{
    TempDir dir;
    sim::ExperimentConfig config;
    config.maxExecutions = 2;
    sim::ParallelOptions options;
    options.provenanceDir = dir.path;
    sim::ParallelEvaluation eval(config, options);

    const sim::PolicyConfig policy = sim::PolicyConfig::pcapBase();
    const std::string app = "mozilla";
    const sim::GlobalOutcome global = eval.globalRun(app, policy);
    const sim::AccuracyStats local = eval.localAccuracy(app, policy);

    // Each cell serialized one binary log; fold each back through
    // the forensics aggregation and reconcile against the stats the
    // run itself reported.
    std::size_t found = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        const std::string path = entry.path().string();
        if (path.size() < 9 ||
            path.compare(path.size() - 9, 9, ".prov.bin") != 0)
            continue;
        std::vector<obs::ProvenanceRecord> records;
        ASSERT_EQ(obs::readProvenanceFile(path, records), "");
        ASSERT_FALSE(records.empty()) << path;
        obs::ProvenanceForensics forensics;
        for (const auto &record : records)
            forensics.add(record);
        const bool isGlobal =
            path.find("global-") != std::string::npos;
        expectReconciles(forensics, isGlobal
                                        ? global.run.accuracy
                                        : local);
        ++found;
        // The JSONL mirror exists alongside the binary log.
        const std::string jsonl =
            path.substr(0, path.size() - 4) + ".jsonl";
        EXPECT_TRUE(std::filesystem::exists(jsonl)) << jsonl;
    }
    EXPECT_EQ(found, 2u); // one global cell, one local cell
}

} // namespace
} // namespace pcap
