/**
 * @file
 * Tests of the modified-strace log parser: the adoption path for
 * real traces collected the way the paper's Section 6 describes.
 */

#include <gtest/gtest.h>

#include "trace/strace_parse.hpp"

namespace pcap::trace {
namespace {

TEST(StraceParse, ParsesAnAnnotatedSession)
{
    const std::string log =
        "# a modified-strace session\n"
        "100 1.000000 open(\"/etc/conf\", O_RDONLY) = 3 "
        "[pc=0x8048010] [file=42]\n"
        "100 1.100000 read(3, ..., 4096) = 4096 [pc=0x8048020] "
        "[file=42] [off=0]\n"
        "100 1.200000 read(3, ..., 4096) = 4096 [pc=0x8048020] "
        "[file=42] [off=4096]\n"
        "100 1.300000 close(3) = 0 [pc=0x8048030]\n"
        "100 2.000000 fork() = 101\n"
        "101 2.500000 write(4, ..., 512) = 512 [pc=0x8048040] "
        "[file=43] [off=0]\n"
        "101 3.000000 exit(0) = ?\n"
        "100 9.000000 exit_group(0) = ?\n";

    std::string error;
    const StraceParseResult result =
        parseStraceText(log, "traced-app", 3, error);
    ASSERT_EQ(error, "");
    EXPECT_EQ(result.linesParsed, 8u);
    EXPECT_EQ(result.linesSkipped, 0u);
    EXPECT_TRUE(result.warnings.empty());

    const Trace &trace = result.trace;
    EXPECT_EQ(trace.app(), "traced-app");
    EXPECT_EQ(trace.execution(), 3);
    EXPECT_EQ(trace.validate(), "");
    EXPECT_EQ(trace.ioCount(), 4u); // open + 2 reads + write

    const TraceEvent &open = trace.events()[0];
    EXPECT_EQ(open.type, EventType::Open);
    EXPECT_EQ(open.pid, 100);
    EXPECT_EQ(open.time, secondsUs(1.0));
    EXPECT_EQ(open.fd, 3); // from the return value
    EXPECT_EQ(open.pc, 0x8048010u);
    EXPECT_EQ(open.file, 42u);

    const TraceEvent &read = trace.events()[1];
    EXPECT_EQ(read.type, EventType::Read);
    EXPECT_EQ(read.fd, 3); // from the first argument
    EXPECT_EQ(read.size, 4096u);
    EXPECT_EQ(trace.events()[2].offset, 4096u);

    const TraceEvent &fork = trace.events()[4];
    EXPECT_EQ(fork.type, EventType::Fork);
    EXPECT_EQ(fork.fd, 101); // the child pid
}

TEST(StraceParse, SkipsUnknownSyscalls)
{
    const std::string log =
        "100 1.0 gettimeofday(...) = 0\n"
        "100 1.1 mmap(NULL, 4096, ...) = 0xb7000000\n"
        "100 1.2 read(3, ..., 100) = 100 [pc=0x1000]\n"
        "100 2.0 exit(0) = ?\n";
    std::string error;
    const StraceParseResult result =
        parseStraceText(log, "app", 0, error);
    ASSERT_EQ(error, "");
    EXPECT_EQ(result.linesSkipped, 2u);
    EXPECT_EQ(result.trace.ioCount(), 1u);
}

TEST(StraceParse, WarnsOnIoWithoutPc)
{
    const std::string log = "100 1.0 read(3, ..., 8) = 8\n"
                            "100 2.0 exit(0) = ?\n";
    std::string error;
    const StraceParseResult result =
        parseStraceText(log, "app", 0, error);
    ASSERT_EQ(error, "");
    ASSERT_EQ(result.warnings.size(), 1u);
    EXPECT_NE(result.warnings[0].find("without a pc"),
              std::string::npos);
}

TEST(StraceParse, RejectsGarbagePid)
{
    std::string error;
    parseStraceText("oops 1.0 read(3) = 1\n", "app", 0, error);
    EXPECT_NE(error.find("bad pid"), std::string::npos);
}

TEST(StraceParse, RejectsBadTimestamp)
{
    std::string error;
    parseStraceText("100 yesterday read(3) = 1\n", "app", 0, error);
    EXPECT_NE(error.find("bad timestamp"), std::string::npos);
}

TEST(StraceParse, RejectsLineWithoutSyscall)
{
    std::string error;
    parseStraceText("100 1.0 whatever\n", "app", 0, error);
    EXPECT_NE(error.find("syscall"), std::string::npos);
}

TEST(StraceParse, FractionalTimestampsBecomeMicroseconds)
{
    const std::string log =
        "100 12.345678 read(3, ..., 1) = 1 [pc=0x1]\n"
        "100 13.0 exit(0) = ?\n";
    std::string error;
    const StraceParseResult result =
        parseStraceText(log, "app", 0, error);
    ASSERT_EQ(error, "");
    EXPECT_EQ(result.trace.events()[0].time, 12'345'678);
}

TEST(StraceParse, SkipsForkWithoutChildPid)
{
    const std::string log = "100 1.0 fork() = -1\n"
                            "100 2.0 exit(0) = ?\n";
    std::string error;
    const StraceParseResult result =
        parseStraceText(log, "app", 0, error);
    ASSERT_EQ(error, "");
    EXPECT_EQ(result.linesSkipped, 1u);
    EXPECT_EQ(result.warnings.size(), 1u);
}

TEST(StraceParse, OutOfOrderLinesAreSorted)
{
    const std::string log =
        "101 3.0 read(3, ..., 1) = 1 [pc=0x2]\n"
        "100 1.0 fork() = 101\n"
        "100 5.0 exit(0) = ?\n"
        "101 4.0 exit(0) = ?\n";
    std::string error;
    const StraceParseResult result =
        parseStraceText(log, "app", 0, error);
    ASSERT_EQ(error, "");
    EXPECT_EQ(result.trace.events().front().time, secondsUs(1.0));
    EXPECT_EQ(result.trace.validate(), "");
}

} // namespace
} // namespace pcap::trace
